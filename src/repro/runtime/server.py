"""``repro serve``: boot a live cluster + gateway and run until signalled.

The runner owns the process lifecycle:

1. boot the :class:`~repro.runtime.cluster.LiveCluster` (bootstrap joins
   over localhost TCP) and the :class:`~repro.runtime.gateway.Gateway`;
2. print the connect line (``gateway listening on HOST:PORT ...``) — the
   CLI contract scripts and the CI smoke job parse;
3. wait for SIGINT/SIGTERM (or a programmatic stop event);
4. **drain**: refuse new queries, await every in-flight one (each bounded
   by the per-query deadline, so shutdown latency is capped), and only
   then close the cluster's sockets.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass
from typing import Optional, Sequence, TextIO, Tuple

from repro.runtime.cluster import LiveCluster
from repro.runtime.gateway import Gateway


@dataclass(frozen=True)
class ServeSettings:
    """Everything ``repro serve`` needs to boot."""

    peers: int = 32
    seed: int = 1
    host: str = "127.0.0.1"
    port: int = 7411
    nodes: Optional[int] = None
    deadline: float = 5.0
    attribute_interval: Tuple[float, float] = (0.0, 1000.0)
    attribute_intervals: Optional[Sequence[Tuple[float, float]]] = ((0.0, 1000.0), (0.0, 1000.0))

    def __post_init__(self) -> None:
        if self.peers < 3:
            raise ValueError("need at least 3 peers")
        if self.port < 0 or self.port > 65535:
            raise ValueError("port must be within [0, 65535] (0 picks an ephemeral port)")
        if self.nodes is not None and self.nodes < 1:
            raise ValueError("nodes must be positive")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")


async def serve_async(
    settings: ServeSettings,
    stop_event: Optional[asyncio.Event] = None,
    out: TextIO = sys.stdout,
) -> int:
    """Run the serving loop; returns the number of queries served.

    ``stop_event`` lets tests stop the server programmatically; without it
    only SIGINT/SIGTERM end the loop.
    """
    loop = asyncio.get_running_loop()
    stop = stop_event if stop_event is not None else asyncio.Event()

    cluster = LiveCluster(
        num_peers=settings.peers,
        seed=settings.seed,
        host=settings.host,
        num_nodes=settings.nodes,
        attribute_interval=settings.attribute_interval,
        attribute_intervals=settings.attribute_intervals,
    )
    await cluster.start()
    gateway = Gateway(cluster, host=settings.host, port=settings.port, deadline=settings.deadline)
    await gateway.start()

    installed_signals = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed_signals.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
            pass

    print(
        f"gateway listening on {gateway.host}:{gateway.port} "
        f"({cluster.network.size} peers on {len(cluster.nodes)} nodes, "
        f"deadline {settings.deadline:g}s, protocols v2+v1)",
        file=out,
        flush=True,
    )
    try:
        await stop.wait()
        print(f"draining {gateway.in_flight} in-flight queries", file=out, flush=True)
        await gateway.shutdown(drain=True)
    finally:
        for signum in installed_signals:
            loop.remove_signal_handler(signum)
        await cluster.stop()
    print(
        f"drained; served {gateway.queries_served} queries, sockets closed",
        file=out,
        flush=True,
    )
    return gateway.queries_served


def serve(settings: ServeSettings) -> int:
    """Blocking entry point for the CLI; returns a process exit code."""
    try:
        asyncio.run(serve_async(settings))
    except KeyboardInterrupt:  # pragma: no cover - raced signal delivery
        pass
    return 0
