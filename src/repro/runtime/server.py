"""``repro serve``: boot a live cluster + gateway and run until signalled.

The runner owns the process lifecycle:

1. boot the :class:`~repro.runtime.cluster.LiveCluster` (bootstrap joins
   over localhost TCP) and the :class:`~repro.runtime.gateway.Gateway`;
2. print the connect line (``gateway listening on HOST:PORT ...``) — the
   CLI contract scripts and the CI smoke job parse;
3. wait for SIGINT/SIGTERM (or a programmatic stop event);
4. **drain**: refuse new queries, await every in-flight one (each bounded
   by the per-query deadline, so shutdown latency is capped), and only
   then close the cluster's sockets.

The serve loop is also where the observability planes come together: a
``metrics_port`` exposes the shared registry over Prometheus text
exposition, the gateway gets a tracer so v2 clients can negotiate the
``tracing`` capability, and lifecycle events go through the structured
``repro.serve`` logger (the contract lines above stay plain prints).
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass
from typing import Optional, Sequence, TextIO, Tuple

from repro.obs.logs import configure_logging, get_logger
from repro.runtime.cluster import LiveCluster
from repro.runtime.gateway import Gateway

log = get_logger("serve")


@dataclass(frozen=True)
class ServeSettings:
    """Everything ``repro serve`` needs to boot."""

    peers: int = 32
    seed: int = 1
    host: str = "127.0.0.1"
    port: int = 7411
    nodes: Optional[int] = None
    deadline: float = 5.0
    attribute_interval: Tuple[float, float] = (0.0, 1000.0)
    attribute_intervals: Optional[Sequence[Tuple[float, float]]] = ((0.0, 1000.0), (0.0, 1000.0))
    #: expose /metrics on this port (None disables the endpoint; 0 picks
    #: an ephemeral port)
    metrics_port: Optional[int] = None
    log_level: str = "info"
    log_json: bool = False
    #: arm the flight recorder and write dumps into this directory
    #: (``SIGUSR1`` dumps on demand, shutdown always dumps)
    record_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.peers < 3:
            raise ValueError("need at least 3 peers")
        if self.port < 0 or self.port > 65535:
            raise ValueError("port must be within [0, 65535] (0 picks an ephemeral port)")
        if self.nodes is not None and self.nodes < 1:
            raise ValueError("nodes must be positive")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.metrics_port is not None and not 0 <= self.metrics_port <= 65535:
            raise ValueError("metrics_port must be within [0, 65535]")


def build_observability(cluster: LiveCluster):
    """One tracer + one registry wired to a cluster's live counters.

    Returns ``(tracer, registry)``.  The registry's callback gauges read
    the cluster's transport and storage counters at scrape time, so the
    metrics plane costs nothing between scrapes.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import Tracer

    tracer = Tracer()
    registry = MetricsRegistry()
    transport = cluster.transport
    if transport is not None:
        registry.register_callback(
            "transport_messages_sent",
            lambda: float(transport.messages_sent),
            "Forwarding messages put on inter-node TCP links",
        )
        registry.register_callback(
            "transport_messages_dropped",
            lambda: float(transport.messages_dropped),
            "Forwarding messages that found no live node",
        )
    registry.register_callback(
        "cluster_peers",
        lambda: float(cluster.network.size),
        "Peers currently in the overlay",
    )
    registry.register_callback(
        "peer_store_objects",
        lambda: float(sum(len(peer.objects()) for peer in cluster.network.peers())),
        "Objects held across all peer stores",
    )

    registry.register_callback(
        "storage_replica_records",
        lambda: float(
            sum(peer.backend.replica_count() for peer in cluster.network.peers())
        ),
        "Replica copies held across all peer storage backends",
    )
    registry.register_callback(
        "storage_replayed_records",
        lambda: float(cluster.replayed_records),
        "Records replayed from durable logs after restarts",
    )

    def _peer_frames() -> float:
        total = sum(node.frames_received for node in cluster.nodes)
        if cluster.seed_node is not None:
            total += cluster.seed_node.frames_received
        return float(total)

    registry.register_callback(
        "peer_frames_total",
        _peer_frames,
        "Wire frames received across every peer node (casts and requests)",
    )
    registry.register_callback(
        "peer_store_sync_total",
        lambda: float(cluster.store_syncs),
        "Store writes acknowledged after a backend sync, across all peers",
    )

    # Membership gauges read the gossip observer view when the control
    # plane runs, and the centralized down-peer authority otherwise —
    # either way the series exist, so dashboards need no mode switch.
    def _membership(state: str):
        return lambda: float(cluster.membership_counts().get(state, 0))

    registry.register_callback(
        "membership_alive", _membership("alive"), "Peers the membership view holds alive"
    )
    registry.register_callback(
        "membership_suspect",
        _membership("suspect"),
        "Peers currently under unrefuted suspicion",
    )
    registry.register_callback(
        "membership_dead",
        _membership("dead"),
        "Peers the membership view has confirmed dead",
    )
    gossip_frames = registry.counter(
        "gossip_frames_total",
        "Gossip control frames sent, by operation",
        ("type",),
    )
    cluster.set_gossip_metrics(gossip_frames)
    return tracer, registry


async def serve_async(
    settings: ServeSettings,
    stop_event: Optional[asyncio.Event] = None,
    out: TextIO = sys.stdout,
) -> int:
    """Run the serving loop; returns the number of queries served.

    ``stop_event`` lets tests stop the server programmatically; without it
    only SIGINT/SIGTERM end the loop.
    """
    configure_logging(settings.log_level, settings.log_json)
    loop = asyncio.get_running_loop()
    stop = stop_event if stop_event is not None else asyncio.Event()

    cluster = LiveCluster(
        num_peers=settings.peers,
        seed=settings.seed,
        host=settings.host,
        num_nodes=settings.nodes,
        attribute_interval=settings.attribute_interval,
        attribute_intervals=settings.attribute_intervals,
    )
    await cluster.start()
    tracer, registry = build_observability(cluster)
    recorder = None
    if settings.record_dir is not None:
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder()
        recorder.install(settings.record_dir)
        cluster.attach_recorder(recorder)
    gateway = Gateway(
        cluster,
        host=settings.host,
        port=settings.port,
        deadline=settings.deadline,
        tracer=tracer,
        metrics=registry,
        recorder=recorder,
    )
    await gateway.start()
    metrics_server = None
    if settings.metrics_port is not None:
        from repro.obs.exposition import MetricsServer

        metrics_server = MetricsServer(registry, host=settings.host, port=settings.metrics_port)
        await metrics_server.start()

    installed_signals = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed_signals.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
            pass

    print(
        f"gateway listening on {gateway.host}:{gateway.port} "
        f"({cluster.network.size} peers on {len(cluster.nodes)} nodes, "
        f"deadline {settings.deadline:g}s, protocols v2+v1)",
        file=out,
        flush=True,
    )
    if metrics_server is not None:
        print(
            f"metrics listening on {metrics_server.host}:{metrics_server.port}/metrics",
            file=out,
            flush=True,
        )
    if recorder is not None:
        print(
            f"flight recorder armed, dumps land in {settings.record_dir} "
            "(SIGUSR1 dumps on demand)",
            file=out,
            flush=True,
        )
    log.info(
        "gateway up",
        extra={
            "peers": cluster.network.size,
            "nodes": len(cluster.nodes),
            "port": gateway.port,
        },
    )
    try:
        await stop.wait()
        print(f"draining {gateway.in_flight} in-flight queries", file=out, flush=True)
        log.info("draining", extra={"in_flight": gateway.in_flight})
        await gateway.shutdown(drain=True)
    finally:
        for signum in installed_signals:
            loop.remove_signal_handler(signum)
        if metrics_server is not None:
            await metrics_server.stop()
        await cluster.stop()
        if recorder is not None:
            dump_path = recorder.dump(reason="shutdown")
            recorder.uninstall()
            print(f"flight recorder dump written to {dump_path}", file=out, flush=True)
    print(
        f"drained; served {gateway.queries_served} queries, sockets closed",
        file=out,
        flush=True,
    )
    log.info("stopped", extra={"queries_served": gateway.queries_served})
    return gateway.queries_served


def serve(settings: ServeSettings) -> int:
    """Blocking entry point for the CLI; returns a process exit code."""
    try:
        asyncio.run(serve_async(settings))
    except KeyboardInterrupt:  # pragma: no cover - raced signal delivery
        pass
    return 0
