"""``storenode`` — one durable store behind a TCP socket, as a process.

This is the smallest unit of the live storage stack that can genuinely be
killed with ``SIGKILL``: a single :class:`~repro.storage.wal.WALStore` (or
SQLite store) served over the runtime's length-framed JSON protocol by its
own OS process.  The crash-consistency integration tests drive it like a
client, ``kill -9`` the process mid-write, restart it on the same log
file, and assert that every acknowledged ``put`` survived and the
content-addressed digest matches — no cooperation from the dying process
required, which is exactly the point.

Run it as a module::

    python -m repro.runtime.storenode --backend wal --path /tmp/peer.wal

On startup it replays the log, binds an ephemeral port, and prints one
JSON line to stdout — ``{"port": N, "replayed": K}`` — so a parent
process can connect without racing the bind.  The request vocabulary
(every request carries an ``"rid"``, every reply echoes it):

===========  =====================================  =========================
op           request fields                         reply fields
===========  =====================================  =========================
``put``      ``object_id``, ``key``, ``value``      ``ok``, ``synced``
``sync``     —                                      ``ok``
``get``      ``object_id``                          ``ok``, ``objects``
``digest``   ``prefix`` (optional)                  ``ok``, ``digest``
``count``    —                                      ``ok``, ``objects``
``ping``     —                                      ``ok``
``quit``     —                                      ``ok`` (then exits)
===========  =====================================  =========================

Keys and values travel through :func:`repro.wire.encode_value` /
:func:`~repro.wire.decode_value` so tuples round-trip through JSON.  A
``put`` is acknowledged only after the record is durably synced (unless
the node was started with ``--sync-mode manual``, in which case ``synced``
is ``False`` until an explicit ``sync`` — the tests use manual mode to
build torn, partially-acknowledged logs on purpose).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict

from repro.runtime.protocol import ProtocolError, encode_frame, read_frame
from repro.storage import BACKENDS, open_store
from repro.wire import decode_value, encode_value


class StoreNodeServer:
    """Serve one durable store over length-framed JSON requests."""

    def __init__(self, backend: str, path: str, sync_mode: str = "always") -> None:
        self.store = open_store(backend, path, sync_mode=sync_mode)
        self.sync_mode = sync_mode
        self.replayed = self.store.replay()
        self._server: asyncio.base_events.Server | None = None
        self._quit = asyncio.Event()

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        self._server = await asyncio.start_server(self._serve, host, port)
        return self._server.sockets[0].getsockname()[1]

    async def wait_quit(self) -> None:
        await self._quit.wait()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.store.close()

    # ------------------------------------------------------------------ #
    # request handling                                                     #
    # ------------------------------------------------------------------ #

    def _handle(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        op = frame.get("op")
        if op == "put":
            self.store.put(
                frame["object_id"],
                key=decode_value(frame["key"]),
                value=decode_value(frame.get("value")),
            )
            synced = self.sync_mode == "always"
            return {"ok": True, "synced": synced}
        if op == "sync":
            self.store.sync()
            return {"ok": True}
        if op == "get":
            objects = self.store.get(frame["object_id"])
            return {
                "ok": True,
                "objects": [
                    [encode_value(stored.key), encode_value(stored.value)]
                    for stored in objects
                ],
            }
        if op == "digest":
            return {"ok": True, "digest": self.store.digest(frame.get("prefix", ""))}
        if op == "count":
            return {"ok": True, "objects": self.store.object_count()}
        if op == "ping":
            return {"ok": True}
        if op == "quit":
            return {"ok": True, "quit": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ProtocolError:
                    break
                if frame is None:
                    break
                rid = frame.get("rid")
                try:
                    payload = self._handle(frame)
                except Exception as exc:  # surface store failures to the caller
                    payload = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
                reply = {"type": "reply", "rid": rid}
                reply.update(payload)
                writer.write(encode_frame(reply))
                await writer.drain()
                if payload.get("quit"):
                    self._quit.set()
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass


async def _amain(args: argparse.Namespace) -> int:
    server = StoreNodeServer(args.backend, args.path, sync_mode=args.sync_mode)
    port = await server.start(args.host, args.port)
    print(json.dumps({"port": port, "replayed": server.replayed}), flush=True)
    await server.wait_quit()
    await server.stop()
    return 0


def main(argv: Any = None) -> int:
    parser = argparse.ArgumentParser(
        prog="storenode", description="serve one durable store over TCP"
    )
    parser.add_argument("--backend", choices=[b for b in BACKENDS if b != "memory"],
                        default="wal")
    parser.add_argument("--path", required=True, help="log / database file")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--sync-mode", choices=("always", "manual"), default="always")
    args = parser.parse_args(argv)
    return asyncio.run(_amain(args))


if __name__ == "__main__":
    sys.exit(main())
