"""The live :class:`~repro.core.transport.Transport`: asyncio TCP links.

:class:`AsyncioTransport` is the runtime's answer to
:class:`~repro.core.transport.SimTransport`.  Where the simulator delivers
a message by scheduling an event, this transport

* resolves the receiver PeerID to the **address** of the node hosting it
  (the address book is populated by the cluster's bootstrap/announce
  protocol, not global knowledge),
* frames the message as length-prefixed JSON
  (:func:`~repro.runtime.protocol.message_to_wire`), and
* enqueues it on a per-node **link** — one long-lived outgoing TCP
  connection per destination node, drained by a writer task, so the
  executor's synchronous ``send()`` never blocks the event loop.

Clock and timers come from the running asyncio loop (``loop.time()`` /
``loop.call_later``), so the per-hop resilience timers and query deadlines
of the core executors work unchanged — in seconds instead of simulated
units.

A send whose receiver has no route, or whose link dies, degrades into a
**drop**: the message's local ``on_drop`` callback fires, exactly the
signal the executors already understand from the simulated overlay.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.runtime.protocol import encode_frame, message_to_wire
from repro.sim.network import Message

Address = Tuple[str, int]


class _Link:
    """One outgoing TCP connection to a peer node, drained by a task.

    The queue carries two item kinds: executor :class:`Message` objects
    (framed lazily by the writer) and pre-encoded ``bytes`` — control
    frames from the gossip plane.  Only messages get drop callbacks; a
    lost control frame needs no notification, because for the gossip
    protocol the loss itself *is* the signal.
    """

    def __init__(self, address: Address, on_drop: Callable[[Message], None]) -> None:
        self.address = address
        self._on_drop = on_drop
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self.broken = False

    def enqueue(self, item: Any) -> None:
        """Queue one message or raw frame (starts the writer lazily)."""
        if self.broken:
            self._discard(item)
            return
        self._queue.put_nowait(item)
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    def _discard(self, item: Any) -> None:
        if isinstance(item, Message):
            self._on_drop(item)

    async def _run(self) -> None:
        writer: Optional[asyncio.StreamWriter] = None
        item: Any = None
        try:
            host, port = self.address
            _, writer = await asyncio.open_connection(host, port)
            while True:
                item = await self._queue.get()
                if item is None:
                    break
                if isinstance(item, Message):
                    writer.write(encode_frame(message_to_wire(item)))
                else:
                    writer.write(item)
                await writer.drain()
                item = None
        except asyncio.CancelledError:
            raise
        except OSError:
            # Connection refused / reset: the message being written, plus
            # everything queued (and everything enqueued from now on), is
            # undeliverable — report every one as a drop.
            self.broken = True
            if item is not None:
                self._discard(item)
            while not self._queue.empty():
                pending = self._queue.get_nowait()
                if pending is not None:
                    self._discard(pending)
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, asyncio.CancelledError):
                    pass

    async def close(self) -> None:
        """Flush the queue sentinel and wait for the writer to finish."""
        if self._task is None:
            return
        self._queue.put_nowait(None)
        try:
            await asyncio.wait_for(self._task, timeout=5.0)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self._task.cancel()
        self._task = None


class AsyncioTransport:
    """Routes executor messages to peer nodes over real TCP sockets.

    The cluster binds PeerIDs to node addresses with :meth:`assign` as the
    bootstrap protocol assigns zones; the executors' membership refresh
    (:meth:`register`/:meth:`unregister`) then only ever *narrows* the
    reachable set — registration is address-book based, so a peer object
    alone (with no announced address) is not reachable, mirroring a real
    deployment where knowing a peer exists is not knowing where it lives.

    ``extra_transit`` adds a fixed artificial delay (seconds) before each
    message is enqueued — zero in production, non-zero in tests that need a
    query to genuinely be *in flight* (e.g. the graceful-shutdown drain
    test).
    """

    def __init__(self, extra_transit: float = 0.0) -> None:
        if extra_transit < 0:
            raise ValueError("extra_transit must be non-negative")
        self.extra_transit = extra_transit
        self._routes: Dict[Hashable, Address] = {}
        self._links: Dict[Address, _Link] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        #: raw control frames (gossip plane) put on links; they bypass the
        #: PeerID route table and are never retried
        self.control_frames_sent = 0
        #: optional flight recorder (set by the cluster's attach_recorder);
        #: None keeps every hot path at one attribute check of overhead
        self.recorder: Optional[Any] = None

    # -- clock & timers ------------------------------------------------------

    @property
    def now(self) -> float:
        """The running loop's monotonic clock, in seconds."""
        return asyncio.get_running_loop().time()

    def schedule_after(self, delay: float, callback: Callable[[], None], label: str = "") -> Any:
        """An ``loop.call_later`` timer (the label is for the simulator's
        benefit only — though the flight recorder logs it on fire)."""
        recorder = self.recorder
        if recorder is not None:
            inner = callback

            def callback() -> None:
                recorder.record("timer", label=label, delay=delay)
                inner()

        return asyncio.get_running_loop().call_later(delay, callback)

    # -- routing -------------------------------------------------------------

    def assign(self, peer_id: Hashable, address: Address) -> None:
        """Bind ``peer_id`` to the node listening at ``address``."""
        self._routes[peer_id] = address

    def address_of(self, peer_id: Hashable) -> Optional[Address]:
        """The address bound to ``peer_id``, if any."""
        return self._routes.get(peer_id)

    def register(self, node: Any) -> None:
        """Membership refresh hook: a no-op, because reachability is
        address-book based (see the class docstring)."""

    def unregister(self, node_id: Hashable) -> None:
        """Drop ``node_id``'s route (its messages become drops)."""
        if self._routes.pop(node_id, None) is not None and self.recorder is not None:
            self.recorder.record("route", action="unregister", peer=node_id)

    def has_node(self, node_id: Hashable) -> bool:
        return node_id in self._routes

    def node_ids(self) -> Iterable[Hashable]:
        return list(self._routes)

    # -- sending -------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Frame ``message`` and enqueue it on the link to its host node."""
        address = self._routes.get(message.receiver)
        if address is None:
            self._drop(message)
            return
        self.messages_sent += 1
        if self.recorder is not None:
            # Scalars only — no message_to_wire here.  Replay re-derives
            # sends from the executors; the deliver tap captures the full
            # frame on arrival, so this event exists for the timeline.
            self.recorder.record(
                "send",
                kind=message.kind,
                query_id=message.query_id,
                send=message.metadata.get("send"),
                sender=message.sender,
                receiver=message.receiver,
                hop=message.hop,
            )
        if self.extra_transit > 0.0:
            asyncio.get_running_loop().call_later(
                self.extra_transit, lambda: self._enqueue(address, message)
            )
        else:
            self._enqueue(address, message)

    def send_frame(self, address: Address, frame: Dict[str, Any]) -> None:
        """Enqueue one raw control frame on the link to ``address``.

        The control plane addresses *processes*, not zones: gossip frames
        go straight to a node address, bypassing the PeerID route table —
        a dead peer's route being withdrawn must never silence the very
        pings that would detect its host.  Fire-and-forget: a broken link
        just loses the frame, and that silence is exactly the liveness
        signal the SWIM loop is built to read.
        """
        self.control_frames_sent += 1
        self._enqueue(address, encode_frame(frame))

    def _enqueue(self, address: Address, item: Any) -> None:
        link = self._links.get(address)
        if link is None or link.broken:
            link = _Link(address, self._drop)
            self._links[address] = link
        link.enqueue(item)

    def _drop(self, message: Message) -> None:
        """Tell the sender's protocol layer this message will never arrive."""
        self.messages_dropped += 1
        if self.recorder is not None:
            self.recorder.record(
                "drop",
                kind=message.kind,
                query_id=message.query_id,
                send=message.metadata.get("send"),
                sender=message.sender,
                receiver=message.receiver,
                hop=message.hop,
            )
        on_drop = message.metadata.get("on_drop")
        if on_drop is not None:
            on_drop(message)

    async def close(self) -> None:
        """Flush and close every link."""
        links: List[_Link] = list(self._links.values())
        self._links.clear()
        for link in links:
            await link.close()

    def __repr__(self) -> str:
        return (
            f"AsyncioTransport(routes={len(self._routes)}, links={len(self._links)}, "
            f"sent={self.messages_sent})"
        )
