"""Discrete-event simulation substrate for P2P overlay experiments.

The paper evaluates Armada with an overlay simulator that measures per-query
delay (in overlay hops) and message cost.  This package provides the pieces
such a simulator needs:

* :mod:`repro.sim.engine` -- a minimal, deterministic discrete-event scheduler.
* :mod:`repro.sim.events` -- event records used by the scheduler.
* :mod:`repro.sim.network` -- an overlay network model that delivers messages
  between nodes with a pluggable latency model and counts every send.
* :mod:`repro.sim.metrics` -- counters / summary statistics helpers.
* :mod:`repro.sim.rng` -- seeded random-source helpers so experiments are
  reproducible.
* :mod:`repro.sim.trace` -- structured trace recording for debugging and for
  the example scripts.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, MessageDelivery, TimerFired
from repro.sim.metrics import Counter, MetricsRegistry, SummaryStats
from repro.sim.network import HopLatencyModel, Message, OverlayNetwork, UniformLatencyModel
from repro.sim.rng import DeterministicRNG, derive_seed
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Simulator",
    "Event",
    "MessageDelivery",
    "TimerFired",
    "Counter",
    "MetricsRegistry",
    "SummaryStats",
    "Message",
    "OverlayNetwork",
    "HopLatencyModel",
    "UniformLatencyModel",
    "DeterministicRNG",
    "derive_seed",
    "TraceEvent",
    "TraceRecorder",
]
