"""A minimal deterministic discrete-event scheduler.

The scheduler keeps a binary heap of pending events ordered by
``(time, priority, sequence)``.  It is intentionally tiny: overlay
experiments in this repository schedule at most a few hundred thousand
events, so a plain ``heapq`` is more than fast enough and trivially
deterministic, which matters far more for reproducing the paper's figures
than raw speed.
"""

from __future__ import annotations

import gc
import heapq
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.events import CancellableHandle


class SimulationError(RuntimeError):
    """Raised when the scheduler is used incorrectly."""


class Simulator:
    """Discrete-event scheduler with deterministic tie-breaking.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule_at(1.0, lambda: fired.append("a"))
    >>> sim.run()
    2
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    #: below this heap size compaction is pointless (rebuilds cost more than
    #: the skipped pops they save)
    COMPACT_MIN_SIZE = 16

    def __init__(self) -> None:
        self._now: float = 0.0
        self._sequence: int = 0
        # Payload is a CancellableHandle (schedule_at/schedule_after) or a
        # plain (callback, arg) tuple (schedule_call).
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._processed: int = 0
        self._running: bool = False
        self._cancelled_pending: int = 0
        self._compactions: int = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) - self._cancelled_pending

    @property
    def heap_size(self) -> int:
        """Raw heap length, cancelled entries included (for tests/diagnostics)."""
        return len(self._heap)

    @property
    def compactions(self) -> int:
        """Number of cancelled-event compaction passes performed."""
        return self._compactions

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> CancellableHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        # Inline allocation (no __init__ frame): one handle per event on the
        # hottest path in the repository.
        handle = CancellableHandle.__new__(CancellableHandle)
        handle.time = time
        handle.callback = callback
        handle.priority = priority
        handle.label = label
        handle.cancelled = False
        handle.on_cancel = self._note_cancellation
        self._sequence += 1
        heappush(self._heap, (time, priority, self._sequence, handle))
        return handle

    def schedule_call(
        self,
        time: float,
        callback: Callable[[Any], None],
        arg: Any,
        priority: int = 0,
    ) -> None:
        """Schedule ``callback(arg)`` at ``time`` — the non-cancellable fast path.

        Message deliveries (the overwhelming majority of events in every
        experiment) are never cancelled, so they skip the
        :class:`CancellableHandle` and the closure entirely: the heap entry is
        ``(time, priority, seq, (callback, arg))``.  Sequence numbers are
        unique, so the payload element is never compared by the heap.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        self._sequence += 1
        heappush(self._heap, (time, priority, self._sequence, (callback, arg)))

    def _note_cancellation(self) -> None:
        """Bookkeeping hook fired by :meth:`CancellableHandle.cancel`.

        Keeps :attr:`pending_events` exact and compacts the heap once more
        than half of its entries are cancelled tombstones, so long-running
        simulations with heavy timer churn stay O(live events) in memory.
        """
        self._cancelled_pending += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and self._cancelled_pending * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (O(live) time)."""
        # Tuple payloads (schedule_call) are never cancellable; keep them all.
        self._heap = [
            entry
            for entry in self._heap
            if entry[3].__class__ is tuple or not entry[3].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self._compactions += 1

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> CancellableHandle:
        """Schedule ``callback`` after a relative ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns ``False`` if none remain."""
        while self._heap:
            time, _priority, _seq, handle = heappop(self._heap)
            if handle.__class__ is tuple:
                self._now = time
                handle[0](handle[1])
                self._processed += 1
                return True
            if handle.cancelled:
                self._cancelled_pending -= 1
                continue
            # A cancel() after the event fired must not skew the live count.
            handle.on_cancel = None
            self._now = time
            handle.callback()
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time.
        max_events:
            Stop after executing this many events (safety valve).

        Returns
        -------
        int
            The number of events executed by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        executed = 0
        # The event loop allocates heavily (messages, handles, heap tuples)
        # but creates no reference cycles of its own, so the generational GC
        # only burns time scanning survivors.  Pause it for the duration and
        # restore on the way out; anything cyclic is collected afterwards.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if until is None and max_events is None:
                # Fast path (the common drain-to-quiescence call): the step()
                # body is inlined to avoid one Python call per event.  The
                # heap attribute is re-read every iteration because callbacks
                # may trigger a compaction, which replaces the list.
                while self._heap:
                    time, _priority, _seq, handle = heappop(self._heap)
                    if handle.__class__ is tuple:
                        # schedule_call payload: (callback, arg), uncancellable.
                        self._now = time
                        handle[0](handle[1])
                        self._processed += 1
                        executed += 1
                        continue
                    if handle.cancelled:
                        self._cancelled_pending -= 1
                        continue
                    handle.on_cancel = None
                    self._now = time
                    handle.callback()
                    self._processed += 1
                    executed += 1
            else:
                while self._heap:
                    if max_events is not None and executed >= max_events:
                        break
                    if until is not None:
                        next_time = self._peek_time()
                        if next_time is None or next_time > until:
                            self._now = max(self._now, until)
                            break
                    if not self.step():
                        break
                    executed += 1
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()
        return executed

    def _peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or ``None``."""
        while self._heap:
            time, _priority, _seq, handle = self._heap[0]
            if handle.__class__ is not tuple and handle.cancelled:
                heapq.heappop(self._heap)
                self._cancelled_pending -= 1
                continue
            return time
        return None

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        # Sever the cancel-notification links first: cancelling a handle from
        # a previous epoch must not skew the new epoch's live-event count.
        for _time, _priority, _seq, handle in self._heap:
            if handle.__class__ is not tuple:
                handle.on_cancel = None
        self._heap.clear()
        self._now = 0.0
        self._sequence = 0
        self._processed = 0
        self._cancelled_pending = 0
