"""Event records used by the discrete-event scheduler.

Events are small immutable records.  The scheduler orders them by
``(time, priority, sequence)`` so that simultaneous events are processed in a
deterministic order: first by explicit priority, then by insertion order.

Everything in this module is slotted: one :class:`CancellableHandle` is
allocated per scheduled event on the simulator's hottest path (hundreds of
thousands per load run), so instance dicts would be pure overhead.  The
handle carries the callback directly — the richer :class:`Event` record is
materialised lazily, only when someone actually asks for it (traces, error
messages, tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True, slots=True)
class Event:
    """A generic scheduled callback.

    Attributes
    ----------
    time:
        Simulation time at which the event fires.
    callback:
        Zero-argument callable executed when the event fires.
    priority:
        Tie-break for events scheduled at the same time (lower fires first).
    label:
        Optional human-readable label, used in traces and error messages.
    """

    time: float
    callback: Callable[[], None]
    priority: int = 0
    label: str = ""

    def fire(self) -> None:
        """Execute the event's callback."""
        self.callback()


@dataclass(frozen=True, slots=True)
class MessageDelivery(Event):
    """Delivery of an overlay message to its destination node."""

    message: Any = None


@dataclass(frozen=True, slots=True)
class TimerFired(Event):
    """A timer set by a node (e.g. for stabilization rounds)."""

    owner: Optional[Any] = None


class CancellableHandle:
    """Handle returned by :meth:`Simulator.schedule` that allows cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the front.  This keeps the scheduler O(log n) per operation.  The
    scheduler installs ``on_cancel`` so it can keep an exact count of live
    events (and compact the heap when cancellations dominate).

    A hand-rolled slotted class rather than a dataclass: one handle is
    allocated per scheduled event, and the scheduler reads ``callback`` off
    it directly when the event fires.
    """

    __slots__ = ("time", "callback", "priority", "label", "cancelled", "on_cancel")

    def __init__(
        self,
        time: float = 0.0,
        callback: Optional[Callable[[], None]] = None,
        priority: int = 0,
        label: str = "",
        on_cancel: Optional[Callable[[], None]] = None,
        event: Optional[Event] = None,
    ) -> None:
        if event is not None:
            # Legacy construction from a pre-built Event record.
            time, callback = event.time, event.callback
            priority, label = event.priority, event.label
        self.time = time
        self.callback = callback
        self.priority = priority
        self.label = label
        self.cancelled = False
        self.on_cancel = on_cancel

    @property
    def event(self) -> Event:
        """The full :class:`Event` record (materialised on demand)."""
        return Event(
            time=self.time,
            callback=self.callback,
            priority=self.priority,
            label=self.label,
        )

    def cancel(self) -> None:
        """Mark the underlying event so the scheduler skips it (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()

    def __repr__(self) -> str:
        return (
            f"CancellableHandle(time={self.time}, priority={self.priority}, "
            f"label={self.label!r}, cancelled={self.cancelled})"
        )
