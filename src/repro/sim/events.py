"""Event records used by the discrete-event scheduler.

Events are small immutable records.  The scheduler orders them by
``(time, priority, sequence)`` so that simultaneous events are processed in a
deterministic order: first by explicit priority, then by insertion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class Event:
    """A generic scheduled callback.

    Attributes
    ----------
    time:
        Simulation time at which the event fires.
    callback:
        Zero-argument callable executed when the event fires.
    priority:
        Tie-break for events scheduled at the same time (lower fires first).
    label:
        Optional human-readable label, used in traces and error messages.
    """

    time: float
    callback: Callable[[], None]
    priority: int = 0
    label: str = ""

    def fire(self) -> None:
        """Execute the event's callback."""
        self.callback()


@dataclass(frozen=True)
class MessageDelivery(Event):
    """Delivery of an overlay message to its destination node."""

    message: Any = None


@dataclass(frozen=True)
class TimerFired(Event):
    """A timer set by a node (e.g. for stabilization rounds)."""

    owner: Optional[Any] = None


@dataclass
class CancellableHandle:
    """Handle returned by :meth:`Simulator.schedule` that allows cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the front.  This keeps the scheduler O(log n) per operation.  The
    scheduler installs ``on_cancel`` so it can keep an exact count of live
    events (and compact the heap when cancellations dominate).
    """

    event: Event
    cancelled: bool = field(default=False)
    on_cancel: Optional[Callable[[], None]] = field(default=None, repr=False, compare=False)

    def cancel(self) -> None:
        """Mark the underlying event so the scheduler skips it (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()
