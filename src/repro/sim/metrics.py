"""Counters and summary statistics for overlay experiments.

The paper reports, for each experiment point, averages over 1000 random
queries of: query delay (hops), total messages, destination peers, and two
derived ratios (``MesgRatio`` and ``IncreRatio``).  :class:`SummaryStats`
accumulates a stream of samples and exposes the summary values the
experiments need; :class:`MetricsRegistry` groups named counters and summary
series for one simulation run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass(slots=True)
class Counter:
    """A monotonically increasing named counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase; use a gauge for decrements")
        self.value += amount

    def reset(self) -> None:
        """Reset the counter to zero."""
        self.value = 0


class SummaryStats:
    """Streaming summary of a series of numeric samples.

    Keeps count, mean, min, max and an exact list of samples (experiments in
    this repository are small enough that storing samples is fine and allows
    exact percentiles).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        """Record one sample."""
        self._samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        """Record many samples."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def minimum(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return min(self._samples) if self._samples else 0.0

    @property
    def maximum(self) -> float:
        """Largest sample (0.0 when empty)."""
        return max(self._samples) if self._samples else 0.0

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return sum(self._samples)

    @property
    def stddev(self) -> float:
        """Population standard deviation (0.0 for fewer than two samples)."""
        if len(self._samples) < 2:
            return 0.0
        mean = self.mean
        variance = sum((sample - mean) ** 2 for sample in self._samples) / len(self._samples)
        return math.sqrt(variance)

    def percentile(self, fraction: float) -> float:
        """Exact percentile via the nearest-rank method.

        ``fraction`` is in ``[0, 1]``; e.g. ``percentile(0.99)`` is the p99.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]

    def percentiles(self, fractions: Iterable[float] = (0.5, 0.95, 0.99)) -> Dict[str, float]:
        """Percentile bundle keyed ``p50``/``p95``/``p99`` style.

        >>> stats = SummaryStats(); stats.extend(range(1, 101))
        >>> stats.percentiles()
        {'p50': 50.0, 'p95': 95.0, 'p99': 99.0}
        """
        return {
            f"p{round(fraction * 100):d}": self.percentile(fraction)
            for fraction in fractions
        }

    @property
    def samples(self) -> List[float]:
        """Copy of the raw samples."""
        return list(self._samples)

    def merge(self, other: "SummaryStats") -> None:
        """Fold another summary's samples into this one."""
        self._samples.extend(other.samples)

    def as_dict(self) -> Dict[str, float]:
        """Summary values as a plain dictionary (handy for tables / JSON)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stddev": self.stddev,
        }

    def __repr__(self) -> str:
        return (
            f"SummaryStats(name={self.name!r}, count={self.count}, mean={self.mean:.3f}, "
            f"min={self.minimum:.3f}, max={self.maximum:.3f})"
        )


@dataclass
class MetricsRegistry:
    """Named counters and summary series for one simulation run."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    summaries: Dict[str, SummaryStats] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter with the given name."""
        if name not in self.counters:
            self.counters[name] = Counter(name=name)
        return self.counters[name]

    def summary(self, name: str) -> SummaryStats:
        """Get (or create) the summary series with the given name."""
        if name not in self.summaries:
            self.summaries[name] = SummaryStats(name=name)
        return self.summaries[name]

    def counter_value(self, name: str, default: int = 0) -> int:
        """Current value of a counter, or ``default`` if it does not exist."""
        counter = self.counters.get(name)
        return counter.value if counter is not None else default

    def reset(self) -> None:
        """Reset all counters and drop all summaries."""
        for counter in self.counters.values():
            counter.reset()
        self.summaries.clear()

    def snapshot(self) -> Dict[str, float]:
        """Flat dictionary of all counter values and summary means."""
        snapshot: Dict[str, float] = {}
        for name, counter in self.counters.items():
            snapshot[f"counter.{name}"] = float(counter.value)
        for name, summary in self.summaries.items():
            snapshot[f"summary.{name}.mean"] = summary.mean
            snapshot[f"summary.{name}.max"] = summary.maximum
        return snapshot


class QueryTracker:
    """Tracks in-flight queries and their completion latencies.

    The concurrent query engine starts many overlapping queries on one
    simulator clock; this tracker records, per query, the simulation time at
    which it was started and completed, and accumulates sojourn latencies
    and hop delays into :class:`SummaryStats` series.  (Completion-driven
    behaviour such as closed-loop refill lives in the engine itself.)
    """

    def __init__(self, name: str = "queries") -> None:
        self.name = name
        self.latency = SummaryStats(f"{name}.latency")
        self.delay_hops = SummaryStats(f"{name}.delay_hops")
        self.completeness = SummaryStats(f"{name}.completeness")
        self._started_at: Dict[object, float] = {}
        self._started = 0
        self._completed = 0
        self._succeeded = 0
        self._failed = 0
        self._first_start: Optional[float] = None
        self._last_completion: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self, query_key: object, time: float) -> None:
        """Record that ``query_key`` entered the system at ``time``."""
        if query_key in self._started_at:
            raise ValueError(f"query {query_key!r} already in flight")
        self._started_at[query_key] = time
        self._started += 1
        if self._first_start is None or time < self._first_start:
            self._first_start = time

    def complete(
        self,
        query_key: object,
        time: float,
        delay_hops: Optional[float] = None,
        success: Optional[bool] = None,
    ) -> float:
        """Record completion; returns the query's sojourn latency.

        ``success`` feeds the success-ratio accounting of the faults work:
        ``True``/``False`` classify the completion, ``None`` (the default)
        counts it as successful — the fault-free legacy behaviour.
        """
        try:
            started = self._started_at.pop(query_key)
        except KeyError as exc:
            raise ValueError(f"query {query_key!r} was never started") from exc
        latency = time - started
        self.latency.add(latency)
        if delay_hops is not None:
            self.delay_hops.add(delay_hops)
        self._completed += 1
        if success is None or success:
            self._succeeded += 1
        else:
            self._failed += 1
        if self._last_completion is None or time > self._last_completion:
            self._last_completion = time
        return latency

    def record_completeness(self, fraction: float) -> None:
        """Record one query's result completeness (``[0, 1]``, vs an oracle)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("completeness must be within [0, 1]")
        self.completeness.add(fraction)

    # -- statistics ---------------------------------------------------------

    @property
    def started(self) -> int:
        """Queries started so far."""
        return self._started

    @property
    def completed(self) -> int:
        """Queries completed so far."""
        return self._completed

    @property
    def succeeded(self) -> int:
        """Completions classified successful (all of them when untracked)."""
        return self._succeeded

    @property
    def failed(self) -> int:
        """Completions classified failed (partial results, deadline expiry)."""
        return self._failed

    def success_ratio(self) -> float:
        """Successful completions over all completions (1.0 when idle)."""
        return safe_ratio(float(self._succeeded), float(self._completed), default=1.0)

    @property
    def in_flight(self) -> int:
        """Queries started but not yet completed."""
        return len(self._started_at)

    @property
    def makespan(self) -> float:
        """Simulated time from first start to last completion (0.0 when idle)."""
        if self._first_start is None or self._last_completion is None:
            return 0.0
        return max(0.0, self._last_completion - self._first_start)

    def throughput(self) -> float:
        """Completed queries per simulated time unit over the makespan."""
        return safe_ratio(float(self._completed), self.makespan)

    def as_dict(self) -> Dict[str, float]:
        """Flat summary (counts, throughput, latency percentiles)."""
        summary: Dict[str, float] = {
            "started": float(self._started),
            "completed": float(self._completed),
            "succeeded": float(self._succeeded),
            "failed": float(self._failed),
            "success_ratio": self.success_ratio(),
            "in_flight": float(self.in_flight),
            "makespan": self.makespan,
            "throughput": self.throughput(),
        }
        if self.completeness.count:
            summary["mean_completeness"] = self.completeness.mean
        for key, value in self.latency.percentiles().items():
            summary[f"latency_{key}"] = value
        for key, value in self.delay_hops.percentiles().items():
            summary[f"delay_{key}"] = value
        return summary


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of an iterable (0.0 when empty)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator`` guarding against a zero denominator."""
    if denominator == 0:
        return default
    return numerator / denominator


def log2_or_zero(value: float) -> float:
    """``log2(value)`` with a 0.0 guard for non-positive inputs."""
    if value <= 0:
        return 0.0
    return math.log2(value)
