"""Overlay network model.

The overlay network connects protocol nodes (DHT peers) to the discrete-event
scheduler.  Every message sent through the network is

* counted (total messages, per-kind messages),
* stamped with the hop count accumulated so far, and
* delivered to the destination node after a latency chosen by the pluggable
  latency model (one simulated time unit per hop by default, matching the
  paper's hop-count delay metric).

Nodes are any objects that expose a hashable ``node_id`` attribute and a
``handle_message(network, message)`` method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Optional, Protocol

from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRegistry
from repro.sim.trace import TraceRecorder


@dataclass
class Message:
    """A message travelling through the overlay.

    Attributes
    ----------
    sender / receiver:
        Node identifiers (opaque, hashable).
    kind:
        Short string describing the message type, e.g. ``"range-query"``.
    payload:
        Arbitrary protocol payload.
    hop:
        Number of overlay hops this message (and its ancestors along the same
        query path) has travelled.  The sender sets it to its own hop + 1.
    query_id:
        Identifier tying together all messages of one query, used by the
        metrics collection in the experiments.
    """

    sender: Hashable
    receiver: Hashable
    kind: str
    payload: Any = None
    hop: int = 0
    query_id: Optional[int] = None
    metadata: Dict[str, Any] = field(default_factory=dict)


class LatencyModel(Protocol):
    """Maps a message to a delivery latency in simulation time units."""

    def latency(self, message: Message) -> float:
        """Latency for delivering ``message``."""


class HopLatencyModel:
    """One simulated time unit per overlay hop (the paper's delay metric)."""

    def latency(self, message: Message) -> float:
        return 1.0


class UniformLatencyModel:
    """Uniformly random latency per hop, for wall-clock style examples."""

    def __init__(self, low_ms: float, high_ms: float, rng: Any) -> None:
        if low_ms < 0 or high_ms < low_ms:
            raise ValueError("require 0 <= low_ms <= high_ms")
        self._low = low_ms
        self._high = high_ms
        self._rng = rng

    def latency(self, message: Message) -> float:
        return self._rng.uniform(self._low, self._high)


class NodeProtocol(Protocol):
    """Minimal interface protocol nodes must implement."""

    node_id: Hashable

    def handle_message(self, network: "OverlayNetwork", message: Message) -> None:
        """Process a delivered message."""


class NetworkError(RuntimeError):
    """Raised when a message is sent to an unknown node."""


class OverlayNetwork:
    """Registry of nodes plus message delivery through the scheduler."""

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        latency_model: Optional[LatencyModel] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.simulator = simulator if simulator is not None else Simulator()
        self.latency_model = latency_model if latency_model is not None else HopLatencyModel()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace
        self._nodes: Dict[Hashable, NodeProtocol] = {}
        self._drop_filter: Optional[Callable[[Message], bool]] = None
        # Hot-path caches: counter objects and interned per-kind labels, so
        # sending a message costs no registry lookups or string formatting.
        self._total_counter = self.metrics.counter("messages.total")
        self._kind_counters: Dict[str, Any] = {}
        self._kind_labels: Dict[str, str] = {}

    # -- node management ---------------------------------------------------

    def register(self, node: NodeProtocol) -> None:
        """Add a node to the overlay (replacing any node with the same id)."""
        self._nodes[node.node_id] = node

    def unregister(self, node_id: Hashable) -> None:
        """Remove a node; messages to it afterwards raise :class:`NetworkError`."""
        self._nodes.pop(node_id, None)

    def node(self, node_id: Hashable) -> NodeProtocol:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise NetworkError(f"unknown node {node_id!r}") from exc

    def has_node(self, node_id: Hashable) -> bool:
        """True when a node with that id is registered."""
        return node_id in self._nodes

    @property
    def node_count(self) -> int:
        """Number of registered nodes."""
        return len(self._nodes)

    def node_ids(self):
        """Iterate over registered node identifiers."""
        return list(self._nodes.keys())

    # -- fault injection ----------------------------------------------------

    def set_drop_filter(self, drop_filter: Optional[Callable[[Message], bool]]) -> None:
        """Install a predicate; messages for which it returns True are dropped.

        Used by the failure-injection tests.
        """
        self._drop_filter = drop_filter

    # -- message delivery ---------------------------------------------------

    def send(self, message: Message) -> None:
        """Send a message: count it and schedule its delivery."""
        if message.receiver not in self._nodes:
            raise NetworkError(f"message to unknown node {message.receiver!r}")
        self._total_counter.increment()
        kind_counter = self._kind_counters.get(message.kind)
        if kind_counter is None:
            kind_counter = self.metrics.counter(f"messages.{message.kind}")
            self._kind_counters[message.kind] = kind_counter
        kind_counter.increment()
        if self.trace is not None:
            self.trace.record(
                self.simulator.now,
                "send",
                sender=message.sender,
                receiver=message.receiver,
                message_kind=message.kind,
                hop=message.hop,
                query_id=message.query_id,
            )
        if self._drop_filter is not None and self._drop_filter(message):
            self.metrics.counter("messages.dropped").increment()
            self._notify_drop(message)
            return
        latency = self.latency_model.latency(message)
        label = self._kind_labels.get(message.kind)
        if label is None:
            label = f"deliver:{message.kind}"
            self._kind_labels[message.kind] = label
        self.simulator.schedule_after(
            latency,
            lambda msg=message: self._deliver(msg),
            label=label,
        )

    def _notify_drop(self, message: Message) -> None:
        """Tell the sender's protocol layer a message will never arrive.

        Senders that track outstanding messages (the concurrent query engine)
        install an ``on_drop`` metadata callback; without it a dropped message
        would leave its query waiting forever.
        """
        on_drop = message.metadata.get("on_drop")
        if on_drop is not None:
            on_drop(message)

    def _deliver(self, message: Message) -> None:
        """Deliver a message to its destination node (if still present)."""
        node = self._nodes.get(message.receiver)
        if node is None:
            self.metrics.counter("messages.undeliverable").increment()
            self._notify_drop(message)
            return
        if self.trace is not None:
            self.trace.record(
                self.simulator.now,
                "deliver",
                sender=message.sender,
                receiver=message.receiver,
                message_kind=message.kind,
                hop=message.hop,
                query_id=message.query_id,
            )
        node.handle_message(self, message)

    def run(self, until: Optional[float] = None) -> int:
        """Run the underlying scheduler until quiescence (or ``until``)."""
        return self.simulator.run(until=until)
