"""Overlay network model.

The overlay network connects protocol nodes (DHT peers) to the discrete-event
scheduler.  Every message sent through the network is

* counted (total messages, per-kind messages),
* stamped with the hop count accumulated so far, and
* delivered to the destination node after a latency chosen by the pluggable
  latency model (one simulated time unit per hop by default, matching the
  paper's hop-count delay metric).

Nodes are any objects that expose a hashable ``node_id`` attribute and a
``handle_message(network, message)`` method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Optional, Protocol, Tuple

from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRegistry
from repro.sim.trace import TraceRecorder


@dataclass(slots=True)
class Message:
    """A message travelling through the overlay.

    Attributes
    ----------
    sender / receiver:
        Node identifiers (opaque, hashable).
    kind:
        Short string describing the message type, e.g. ``"range-query"``.
    payload:
        Arbitrary protocol payload.
    hop:
        Number of overlay hops this message (and its ancestors along the same
        query path) has travelled.  The sender sets it to its own hop + 1.
    query_id:
        Identifier tying together all messages of one query, used by the
        metrics collection in the experiments.
    """

    sender: Hashable
    receiver: Hashable
    kind: str
    payload: Any = None
    hop: int = 0
    query_id: Optional[int] = None
    metadata: Dict[str, Any] = field(default_factory=dict)


class LatencyModel(Protocol):
    """Maps a message to a delivery latency in simulation time units."""

    def latency(self, message: Message) -> float:
        """Latency for delivering ``message``."""


class HopLatencyModel:
    """One simulated time unit per overlay hop (the paper's delay metric)."""

    def latency(self, message: Message) -> float:
        return 1.0


class UniformLatencyModel:
    """Uniformly random latency per hop, for wall-clock style examples."""

    def __init__(self, low_ms: float, high_ms: float, rng: Any) -> None:
        if low_ms < 0 or high_ms < low_ms:
            raise ValueError("require 0 <= low_ms <= high_ms")
        self._low = low_ms
        self._high = high_ms
        self._rng = rng

    def latency(self, message: Message) -> float:
        return self._rng.uniform(self._low, self._high)


class NodeProtocol(Protocol):
    """Minimal interface protocol nodes must implement."""

    node_id: Hashable

    def handle_message(self, network: "OverlayNetwork", message: Message) -> None:
        """Process a delivered message."""


class FaultInjectorProtocol(Protocol):
    """What the overlay needs from a fault injector (see :mod:`repro.faults`).

    The overlay consults the injector twice per message: once at send time
    (``on_send`` may drop the message, delay it, or duplicate it) and once
    at delivery time (``blocks_delivery`` models receivers that crashed or
    were partitioned away while the message was in flight).  Both return
    cheaply when no fault applies, so an installed-but-idle injector does
    not change simulation results.
    """

    def on_send(self, message: Message) -> "FaultDecision":
        """Fault decision for a message about to be scheduled."""

    def blocks_delivery(self, message: Message) -> Optional[str]:
        """Reason the delivery must be suppressed, or ``None`` to deliver."""


@dataclass(slots=True)
class FaultDecision:
    """Composable outcome of consulting the fault models for one message."""

    drop: bool = False
    reason: str = ""
    extra_delay: float = 0.0
    copies: int = 0

    def combine(self, other: "FaultDecision") -> None:
        """Fold another model's decision into this one (drop wins, delays add)."""
        if other.drop and not self.drop:
            self.drop = True
            self.reason = other.reason
        self.extra_delay += other.extra_delay
        self.copies += other.copies


#: shared "nothing happened" decision — callers must never mutate it
NO_FAULT = FaultDecision()


class NetworkError(RuntimeError):
    """Raised when a message is sent to an unknown node."""


class OverlayNetwork:
    """Registry of nodes plus message delivery through the scheduler."""

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        latency_model: Optional[LatencyModel] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.simulator = simulator if simulator is not None else Simulator()
        self.latency_model = latency_model if latency_model is not None else HopLatencyModel()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace
        self._nodes: Dict[Hashable, NodeProtocol] = {}
        self._drop_filter: Optional[Callable[[Message], bool]] = None
        self._fault_injector: Optional["FaultInjectorProtocol"] = None
        # Per-query drop ledger, keyed by (kind, query_id): lost messages are
        # attributable to the query that sent them even when the sender never
        # installed an ``on_drop`` callback (satellite of the faults work —
        # a query whose messages vanish must be visible, not silently short).
        self._query_drops: Dict[Tuple[str, Any], int] = {}
        # Hot-path caches: per-kind counter objects, so sending a message
        # costs no registry lookups or string formatting.
        self._total_counter = self.metrics.counter("messages.total")
        self._kind_cache: Dict[str, Any] = {}

    # -- node management ---------------------------------------------------

    def register(self, node: NodeProtocol) -> None:
        """Add a node to the overlay (replacing any node with the same id)."""
        self._nodes[node.node_id] = node

    def unregister(self, node_id: Hashable) -> None:
        """Remove a node; messages to it afterwards raise :class:`NetworkError`."""
        self._nodes.pop(node_id, None)

    def node(self, node_id: Hashable) -> NodeProtocol:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise NetworkError(f"unknown node {node_id!r}") from exc

    def has_node(self, node_id: Hashable) -> bool:
        """True when a node with that id is registered."""
        return node_id in self._nodes

    @property
    def node_count(self) -> int:
        """Number of registered nodes."""
        return len(self._nodes)

    def node_ids(self):
        """Iterate over registered node identifiers."""
        return list(self._nodes.keys())

    # -- fault injection ----------------------------------------------------

    def set_drop_filter(self, drop_filter: Optional[Callable[[Message], bool]]) -> None:
        """Install a predicate; messages for which it returns True are dropped.

        Used by the failure-injection tests.
        """
        self._drop_filter = drop_filter

    def set_fault_injector(self, injector: Optional[FaultInjectorProtocol]) -> None:
        """Install (or remove) the composable fault injector.

        The injector is consulted on every send and every delivery; with no
        injector installed both paths are zero-cost, so the fault-free
        simulation is byte-identical to the pre-faults code.
        """
        self._fault_injector = injector

    @property
    def fault_injector(self) -> Optional[FaultInjectorProtocol]:
        """The currently installed fault injector, if any."""
        return self._fault_injector

    def drops_for_query(self, kind: str, query_id: Any) -> int:
        """Messages of query ``(kind, query_id)`` that were dropped or
        undeliverable.  Counted unconditionally in :meth:`_notify_drop`, so
        lost queries are visible even when the sender installed no
        ``on_drop`` callback and faults are disabled."""
        return self._query_drops.get((kind, query_id), 0)

    def clear_query_drops(self, kind: str, query_id: Any) -> None:
        """Forget the drop ledger of a finished query (the engine calls
        this at completion so a long-lived overlay stays O(in-flight))."""
        self._query_drops.pop((kind, query_id), None)

    @property
    def total_query_drops(self) -> int:
        """Dropped/undeliverable messages attributable to some query."""
        return sum(self._query_drops.values())

    # -- message delivery ---------------------------------------------------

    def send(self, message: Message) -> None:
        """Send a message: count it and schedule its delivery."""
        kind = message.kind
        if message.receiver not in self._nodes:
            raise NetworkError(f"message to unknown node {message.receiver!r}")
        # Counters are incremented in place (they are plain slotted records
        # owned by this overlay) — two method calls per message saved.
        self._total_counter.value += 1
        kind_counter = self._kind_cache.get(kind)
        if kind_counter is None:
            kind_counter = self.metrics.counter(f"messages.{kind}")
            self._kind_cache[kind] = kind_counter
        kind_counter.value += 1
        if self.trace is not None:
            self.trace.record(
                self.simulator.now,
                "send",
                sender=message.sender,
                receiver=message.receiver,
                message_kind=message.kind,
                hop=message.hop,
                query_id=message.query_id,
            )
        if self._drop_filter is not None and self._drop_filter(message):
            self.metrics.counter("messages.dropped").increment()
            self._notify_drop(message)
            return
        extra_delay = 0.0
        copies = 0
        if self._fault_injector is not None:
            decision = self._fault_injector.on_send(message)
            if decision.drop:
                self.metrics.counter("messages.dropped").increment()
                if decision.reason:
                    self.metrics.counter(f"messages.dropped.{decision.reason}").increment()
                self._notify_drop(message)
                return
            extra_delay = decision.extra_delay
            copies = decision.copies
        override = message.metadata.get("latency")
        if override is not None:
            latency = float(override) + extra_delay
        else:
            # Exact-class fast path for the default hop-latency model: its
            # answer is the constant 1.0, not worth a Python call per message.
            model = self.latency_model
            latency = (
                1.0 if model.__class__ is HopLatencyModel else model.latency(message)
            ) + extra_delay
        # Deliveries are never cancelled, so they go through the scheduler's
        # handle-free fast path (schedule_call); a negative latency still
        # raises the same SimulationError through its past-time check.
        simulator = self.simulator
        # Direct clock read (same subsystem): the `now` property costs a
        # Python call per message for no added safety here.
        simulator.schedule_call(simulator._now + latency, self._deliver, message)
        # Duplication faults: extra copies arrive one latency unit apart so
        # they are strictly ordered after the original (deterministically).
        for copy_index in range(copies):
            self.metrics.counter("messages.duplicated").increment()
            simulator.schedule_call(
                simulator.now + latency + float(copy_index + 1),
                self._deliver,
                message,
            )

    def _notify_drop(self, message: Message) -> None:
        """Tell the sender's protocol layer a message will never arrive.

        Senders that track outstanding messages (the concurrent query engine)
        install an ``on_drop`` metadata callback; without it a dropped message
        would leave its query waiting forever — which is why the drop is
        *always* charged to the query's ledger first: even callback-less
        queries show up in :meth:`drops_for_query` instead of stalling
        invisibly.
        """
        if message.query_id is not None:
            key = (message.kind, message.query_id)
            self._query_drops[key] = self._query_drops.get(key, 0) + 1
        on_drop = message.metadata.get("on_drop")
        if on_drop is not None:
            on_drop(message)

    def _deliver(self, message: Message) -> None:
        """Deliver a message to its destination node (if still present)."""
        node = self._nodes.get(message.receiver)
        if node is None:
            self.metrics.counter("messages.undeliverable").increment()
            self._notify_drop(message)
            return
        if self._fault_injector is not None:
            blocked = self._fault_injector.blocks_delivery(message)
            if blocked is not None:
                self.metrics.counter("messages.undeliverable").increment()
                if blocked:
                    self.metrics.counter(f"messages.dropped.{blocked}").increment()
                self._notify_drop(message)
                return
        if self.trace is not None:
            self.trace.record(
                self.simulator.now,
                "deliver",
                sender=message.sender,
                receiver=message.receiver,
                message_kind=message.kind,
                hop=message.hop,
                query_id=message.query_id,
            )
        # Messages carrying a ``handler`` metadata hook (the query executors'
        # per-message dispatch) are routed to it directly — same contract as
        # FissionePeer.handle_message's shim, minus one call per message.
        handler = message.metadata.get("handler")
        if handler is not None:
            handler(node, self, message)
        else:
            node.handle_message(self, message)

    def run(self, until: Optional[float] = None) -> int:
        """Run the underlying scheduler until quiescence (or ``until``)."""
        return self.simulator.run(until=until)
