"""Seeded random-source helpers.

Every stochastic component of the simulator (workload generation, join order,
query origin selection, ...) draws from a :class:`DeterministicRNG` derived
from a single experiment seed, so that every figure in EXPERIMENTS.md can be
regenerated bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *components: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is stable across runs and Python versions (it uses SHA-256
    rather than ``hash``, which is salted per-process).

    >>> derive_seed(42, "join-order") == derive_seed(42, "join-order")
    True
    >>> derive_seed(42, "join-order") != derive_seed(42, "queries")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode("utf-8"))
    for component in components:
        digest.update(b"\x1f")
        digest.update(repr(component).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class DeterministicRNG:
    """Thin wrapper over :class:`random.Random` with namespaced sub-streams."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """Seed this stream was created with."""
        return self._seed

    def substream(self, *components: object) -> "DeterministicRNG":
        """Return an independent stream derived from this one."""
        return DeterministicRNG(derive_seed(self._seed, *components))

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly chosen element of ``items``."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        """``count`` distinct elements sampled without replacement."""
        return self._random.sample(items, count)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def zipf(self, alpha: float, max_rank: int) -> int:
        """Draw a rank in ``[1, max_rank]`` from a truncated Zipf distribution."""
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if max_rank < 1:
            raise ValueError("max_rank must be at least 1")
        weights = [1.0 / (rank ** alpha) for rank in range(1, max_rank + 1)]
        total = sum(weights)
        target = self._random.random() * total
        cumulative = 0.0
        for rank, weight in enumerate(weights, start=1):
            cumulative += weight
            if target <= cumulative:
                return rank
        return max_rank

    def exponential(self, mean: float) -> float:
        """Exponentially distributed float with the given mean."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return self._random.expovariate(1.0 / mean)

    def permutation(self, items: Iterable[T]) -> List[T]:
        """Return a shuffled copy of ``items``."""
        result = list(items)
        self._random.shuffle(result)
        return result
