"""Structured trace recording.

A :class:`TraceRecorder` captures a chronological list of events (message
sends, deliveries, protocol decisions).  Traces are optional -- experiments
turn them off for speed -- but the examples and some integration tests use
them to show and assert on the actual path a query took.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str
    attributes: Dict[str, Any]

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor for an attribute."""
        return self.attributes.get(key, default)


@dataclass
class TraceRecorder:
    """Appends :class:`TraceEvent` records and supports simple filtering."""

    events: List[TraceEvent] = field(default_factory=list)
    enabled: bool = True
    max_events: Optional[int] = None
    #: events discarded because the recorder was full — a non-zero value
    #: means the trace is truncated and downstream analysis must say so
    dropped: int = 0

    def record(self, time: float, kind: str, **attributes: Any) -> None:
        """Record one event (no-op when disabled; counts drops when full)."""
        if not self.enabled:
            return
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time=time, kind=kind, attributes=dict(attributes)))

    @property
    def truncated(self) -> bool:
        """True when at least one event was dropped at the cap."""
        return self.dropped > 0

    def clear(self) -> None:
        """Drop all recorded events (and reset the drop counter)."""
        self.events.clear()
        self.dropped = 0

    def filter(self, kind: Optional[str] = None, **attributes: Any) -> List[TraceEvent]:
        """Events matching the given kind and attribute values."""
        matches: List[TraceEvent] = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if any(event.get(key) != value for key, value in attributes.items()):
                continue
            matches.append(event)
        return matches

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable multi-line rendering of the trace."""
        lines = []
        events = self.events if limit is None else self.events[:limit]
        for event in events:
            attrs = " ".join(f"{key}={value}" for key, value in sorted(event.attributes.items()))
            lines.append(f"[{event.time:8.2f}] {event.kind:<10} {attrs}")
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        if self.dropped:
            lines.append(f"!!! truncated: {self.dropped} events dropped at max_events")
        return "\n".join(lines)
