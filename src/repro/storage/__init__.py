"""Durable peer storage: the seam between the overlay and the disk.

See :mod:`repro.storage.base` for the :class:`Store` contract.  Three
backends:

* ``memory`` — :class:`MemoryStore`, the pre-seam dict semantics, volatile;
* ``wal`` — :class:`WALStore`, append-only checksummed log, fsync-on-ack;
* ``sqlite`` — :class:`SQLiteStore`, the same log contract on stdlib
  ``sqlite3``.

:func:`open_store` maps a backend name to a store instance;
:func:`store_factory` turns ``(backend, data_dir)`` into the per-peer
``peer_id -> Store`` callable the overlay and the live cluster thread
through their construction paths.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.storage.base import StorageError, Store, StoredObject
from repro.storage.memory import MemoryStore
from repro.storage.sqlite import SQLiteStore
from repro.storage.wal import WALStore

__all__ = [
    "BACKENDS",
    "MemoryStore",
    "SQLiteStore",
    "StorageError",
    "Store",
    "StoredObject",
    "WALStore",
    "open_store",
    "store_factory",
    "store_path",
]

#: backend names accepted by the CLI / soak / cluster ``storage=`` options
BACKENDS = ("memory", "wal", "sqlite")

_SUFFIX = {"wal": ".wal", "sqlite": ".sqlite"}


def store_path(data_dir: str, peer_id: str, backend: str) -> str:
    """The durable file for ``peer_id``'s slice under ``data_dir``.

    Kautz peer ids are strings over the digits ``0..2``, so they embed
    directly in a filename.
    """
    return os.path.join(data_dir, f"peer-{peer_id}{_SUFFIX[backend]}")


def open_store(
    backend: str,
    path: Optional[str] = None,
    sync_mode: str = "always",
) -> Store:
    """Open one store of the named backend (``path`` required if durable)."""
    if backend == "memory":
        return MemoryStore()
    if backend == "wal":
        if path is None:
            raise StorageError("wal backend requires a path")
        return WALStore(path, sync_mode=sync_mode)
    if backend == "sqlite":
        if path is None:
            raise StorageError("sqlite backend requires a path")
        return SQLiteStore(path, sync_mode=sync_mode)
    raise StorageError(f"unknown storage backend {backend!r} (choose from {BACKENDS})")


def store_factory(
    backend: str,
    data_dir: Optional[str] = None,
    sync_mode: str = "always",
) -> Callable[[str], Store]:
    """A ``peer_id -> Store`` factory for the named backend.

    Durable backends need ``data_dir``; it is created on first use so a
    fresh ``--data-dir`` Just Works.
    """
    if backend not in BACKENDS:
        raise StorageError(
            f"unknown storage backend {backend!r} (choose from {BACKENDS})"
        )
    if backend == "memory":
        return lambda peer_id: MemoryStore()
    if data_dir is None:
        raise StorageError(f"{backend} backend requires a data_dir")

    def factory(peer_id: str) -> Store:
        os.makedirs(data_dir, exist_ok=True)
        return open_store(
            backend, store_path(data_dir, peer_id, backend), sync_mode=sync_mode
        )

    return factory
