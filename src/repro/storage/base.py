"""The storage seam under the overlay: :class:`Store` and its contract.

Every FISSIONE peer owns the objects published into its Kautz prefix zone.
Until this layer existed those objects lived in a bare dict on the peer —
a crash-recover fault could "recover" state that was never at risk, and
the ``replicas`` request option could only re-run queries.  A
:class:`Store` separates the two concerns a real deployment has to keep
apart:

* the **read view** (:attr:`Store.view`): the in-memory
  ``{object_id: [StoredObject, ...]}`` buckets the query executors scan on
  the hot path.  The view is plain data — the PIRA destination loop reads
  it directly, so the simulator's fault-free byte-identical guarantee is
  preserved no matter which backend maintains it;
* the **durable log** (backend-specific): an ordered record of every write
  (`put` / `rput` / `take`) that survives a process kill.  A write is
  *acknowledged* only once :meth:`Store.sync` has returned — the
  durability barrier replication and the gateway ack rule are built on.

The crash/recovery contract (exercised by the crash-consistency suite in
``tests/property/test_prop_storage.py``):

* :meth:`power_fail` models losing the process *and* everything that was
  not yet synced: the read views vanish, the unsynced log tail vanishes.
  It is deliberately **stricter than a real ``kill -9``** (where
  OS-buffered ``write()`` data usually survives): anything the tests prove
  under :meth:`power_fail` holds under a mere process kill too;
* :meth:`replay` rebuilds the views from the durable medium, tolerating a
  torn final record (a crash mid-append), and returns the number of
  records applied.  After ``power_fail(); replay()`` the view must equal
  the view at the last :meth:`sync` — that is the crash-consistency
  property, word for word.

Replica copies (:attr:`Store.replica_view`) are objects this peer stores
on behalf of a *prefix sibling* (see
:meth:`repro.fissione.network.FissioneNetwork.replica_peers`).  They are
durably logged like primary writes but kept out of :attr:`view`, so range
queries scanning a destination peer never double-count an object that is
both owned by one peer and replicated on another.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List

from repro.binframe import encode_binary
from repro.wire import decode_value, encode_value


class StorageError(RuntimeError):
    """Raised on invalid storage operations or an unusable durable medium."""


@dataclass(slots=True)
class StoredObject:
    """An object published into the DHT."""

    object_id: str
    key: Any
    value: Any

    def to_wire(self) -> Dict[str, Any]:
        """JSON-compatible form; tuples in key/value survive the round trip."""
        return {
            "object_id": self.object_id,
            "key": encode_value(self.key),
            "value": encode_value(self.value),
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "StoredObject":
        """Rebuild a :class:`StoredObject` from :meth:`to_wire` output."""
        return cls(
            object_id=wire["object_id"],
            key=decode_value(wire["key"]),
            value=decode_value(wire["value"]),
        )


class Store:
    """Base store: the in-memory read views plus no-op durability hooks.

    Used directly as the **memory backend** (see
    :class:`~repro.storage.memory.MemoryStore`): the view manipulation
    here is byte-for-byte the dict logic that used to live on
    :class:`~repro.fissione.peer.FissionePeer`, so simulator runs on the
    default backend are unchanged.  Durable backends override the three
    ``_log_*`` hooks plus :meth:`sync` / :meth:`replay` /
    :meth:`_drop_unsynced` / :meth:`close`.
    """

    #: short name reported in stats and CLI flags
    backend_name = "memory"

    def __init__(self) -> None:
        #: primary read view — scanned directly by the query executors
        self.view: Dict[str, List[StoredObject]] = {}
        #: replica copies held for prefix siblings — never query-scanned
        self.replica_view: Dict[str, List[StoredObject]] = {}

    # ------------------------------------------------------------------ #
    # write path                                                           #
    # ------------------------------------------------------------------ #

    def put(self, object_id: str, key: Any, value: Any) -> StoredObject:
        """Append one primary object (durably logged, view updated)."""
        stored = StoredObject(object_id=object_id, key=key, value=value)
        self._log_record("put", object_id, key, value)
        self.view.setdefault(object_id, []).append(stored)
        return stored

    def put_replica(self, object_id: str, key: Any, value: Any) -> StoredObject:
        """Append one replica copy held on behalf of a prefix sibling."""
        stored = StoredObject(object_id=object_id, key=key, value=value)
        self._log_record("rput", object_id, key, value)
        self.replica_view.setdefault(object_id, []).append(stored)
        return stored

    def absorb(self, objects: Iterable[StoredObject]) -> None:
        """Add primary objects handed over from another peer (zone moves)."""
        for stored in objects:
            self._log_record("put", stored.object_id, stored.key, stored.value)
            self.view.setdefault(stored.object_id, []).append(stored)

    def take_prefix(self, prefix: str) -> List[StoredObject]:
        """Remove and return primary objects whose ObjectID extends ``prefix``.

        Used when a zone splits and half of the objects move to the new
        peer; the removal is durably logged so a replay never resurrects
        handed-over objects.
        """
        moved: List[StoredObject] = []
        remaining: Dict[str, List[StoredObject]] = {}
        for object_id, bucket in self.view.items():
            if object_id.startswith(prefix):
                moved.extend(bucket)
            else:
                remaining[object_id] = bucket
        if moved:
            self._log_take(prefix)
        self.view = remaining
        return moved

    # ------------------------------------------------------------------ #
    # durability barrier / crash / recovery                                #
    # ------------------------------------------------------------------ #

    def sync(self) -> None:
        """Durability barrier: on return every prior write survives a crash.

        The ack rule of the write path: an insert is acknowledged to the
        client only after ``sync()`` returned on every replica's store.
        The memory backend has no durable medium — sync is a no-op and a
        crash loses everything, which is exactly what the corrected
        ``CrashRecover`` semantics expose.
        """

    def power_fail(self) -> None:
        """Crash the store: views are gone, the unsynced log tail is gone."""
        self.view = {}
        self.replica_view = {}
        self._drop_unsynced()

    def replay(self) -> int:
        """Rebuild the views from the durable medium; returns records applied."""
        return 0

    def close(self) -> None:
        """Graceful shutdown: flush everything durably and release handles."""

    # -- hooks for durable backends ---------------------------------------

    def _log_record(self, op: str, object_id: str, key: Any, value: Any) -> None:
        """Append one write record to the durable log (no-op in memory)."""

    def _log_take(self, prefix: str) -> None:
        """Append one prefix-removal record to the durable log."""

    def _drop_unsynced(self) -> None:
        """Discard log records not yet covered by a :meth:`sync`."""

    # -- replay helper shared by the durable backends ----------------------

    def _apply_record(self, op: str, object_id: str, key: Any, value: Any) -> None:
        """Apply one decoded log record to the in-memory views."""
        if op == "put":
            self.view.setdefault(object_id, []).append(
                StoredObject(object_id=object_id, key=key, value=value)
            )
        elif op == "rput":
            self.replica_view.setdefault(object_id, []).append(
                StoredObject(object_id=object_id, key=key, value=value)
            )
        elif op == "take":
            prefix = object_id
            self.view = {
                oid: bucket
                for oid, bucket in self.view.items()
                if not oid.startswith(prefix)
            }
        else:
            raise StorageError(f"unknown log record op {op!r}")

    # ------------------------------------------------------------------ #
    # reads                                                                #
    # ------------------------------------------------------------------ #

    def get(self, object_id: str) -> List[StoredObject]:
        """Primary objects stored under ``object_id`` (empty when none)."""
        return list(self.view.get(object_id, []))

    def get_replica(self, object_id: str) -> List[StoredObject]:
        """Replica copies held under ``object_id`` (empty when none)."""
        return list(self.replica_view.get(object_id, []))

    def objects(self) -> List[StoredObject]:
        """All primary objects, bucket by bucket."""
        result: List[StoredObject] = []
        for bucket in self.view.values():
            result.extend(bucket)
        return result

    def object_count(self) -> int:
        """Number of primary objects."""
        return sum(len(bucket) for bucket in self.view.values())

    def replica_count(self) -> int:
        """Number of replica copies held for siblings."""
        return sum(len(bucket) for bucket in self.replica_view.values())

    # ------------------------------------------------------------------ #
    # content-addressed integrity                                          #
    # ------------------------------------------------------------------ #

    def digest(self, prefix: str = "", replicas: bool = False) -> str:
        """SHA-256 over the canonical serialisation of a prefix slice.

        The canonical form sorts buckets by ObjectID and serialises every
        record with the deterministic binary codec, so two stores hold the
        same slice *iff* their digests match — the content-addressed
        integrity check the recovery tests pin replayed state with.
        """
        view = self.replica_view if replicas else self.view
        hasher = hashlib.sha256()
        for object_id in sorted(view):
            if prefix and not object_id.startswith(prefix):
                continue
            for stored in view[object_id]:
                hasher.update(
                    encode_binary(
                        [
                            stored.object_id,
                            encode_value(stored.key),
                            encode_value(stored.value),
                        ]
                    )
                )
        return hasher.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"{type(self).__name__}(objects={self.object_count()}, "
            f"replicas={self.replica_count()})"
        )
