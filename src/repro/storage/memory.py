"""The in-memory backend: the pre-seam peer dict, now behind the seam.

:class:`MemoryStore` is :class:`~repro.storage.base.Store` verbatim — the
base class *is* the dict logic that used to live inline on
``FissionePeer``, and this subclass only pins the name.  It exists so
call sites can say ``MemoryStore()`` (and ``isinstance`` checks read
naturally) without implying the base class is abstract.

Durability contract: none.  ``sync()`` is a no-op, ``power_fail()``
loses everything, ``replay()`` restores nothing.  That is the honest
behavior the corrected ``CrashRecover`` fault model exposes: a peer
backed by memory comes back up *empty* and must re-serve only what the
overlay re-publishes to it.
"""

from __future__ import annotations

from repro.storage.base import Store

__all__ = ["MemoryStore"]


class MemoryStore(Store):
    """Volatile store: fast, deterministic, and gone after a crash."""

    backend_name = "memory"
