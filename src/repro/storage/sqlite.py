"""SQLite backend: the same log contract on an embedded relational store.

The schema is deliberately a *log*, not a key/value table::

    CREATE TABLE log (
        seq       INTEGER PRIMARY KEY AUTOINCREMENT,
        op        TEXT    NOT NULL,     -- 'put' | 'rput' | 'take'
        object_id TEXT    NOT NULL,     -- the take prefix for 'take'
        body      BLOB                  -- binframe [key, value]; NULL for take
    )

Replaying ``SELECT ... ORDER BY seq`` through the shared
``_apply_record`` reproduces exactly the view a :class:`WALStore` replay
produces for the same write sequence — the two backends are
interchangeable behind the :class:`~repro.storage.base.Store` contract,
and the property suite holds them to it.

Durability mapping: a write is an uncommitted ``INSERT`` on the
connection; :meth:`SQLiteStore.sync` is ``COMMIT`` (with
``synchronous=FULL`` and SQLite's own WAL journal, a committed
transaction survives a crash); :meth:`SQLiteStore.power_fail` rolls the
open transaction back and drops the connection, so unsynced writes
vanish just as the userspace buffer does in :class:`WALStore`.  Torn
final records never reach replay at all — SQLite's journal makes partial
transactions invisible, which is precisely the framing+CRC work the raw
WAL does by hand.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Optional

from repro.binframe import decode_binary, encode_binary
from repro.storage.base import StorageError, Store
from repro.wire import decode_value, encode_value

__all__ = ["SQLiteStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS log (
    seq       INTEGER PRIMARY KEY AUTOINCREMENT,
    op        TEXT    NOT NULL,
    object_id TEXT    NOT NULL,
    body      BLOB
)
"""


class SQLiteStore(Store):
    """Durable store over one SQLite database file."""

    backend_name = "sqlite"

    def __init__(self, path: str, sync_mode: str = "always") -> None:
        if sync_mode not in ("always", "manual"):
            raise StorageError(f"unknown sync_mode {sync_mode!r}")
        super().__init__()
        self.path = path
        self.sync_mode = sync_mode
        self._conn: Optional[sqlite3.Connection] = None
        self._connect()

    def _connect(self) -> None:
        conn = sqlite3.connect(self.path)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=FULL")
        conn.execute(_SCHEMA)
        conn.commit()
        self._conn = conn

    def _require_conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StorageError(f"SQLite store {self.path} is closed")
        return self._conn

    # ------------------------------------------------------------------ #
    # logging hooks                                                        #
    # ------------------------------------------------------------------ #

    def _log_record(self, op: str, object_id: str, key: Any, value: Any) -> None:
        body = encode_binary([encode_value(key), encode_value(value)])
        self._require_conn().execute(
            "INSERT INTO log (op, object_id, body) VALUES (?, ?, ?)",
            (op, object_id, body),
        )
        if self.sync_mode == "always":
            self.sync()

    def _log_take(self, prefix: str) -> None:
        self._require_conn().execute(
            "INSERT INTO log (op, object_id, body) VALUES ('take', ?, NULL)",
            (prefix,),
        )
        if self.sync_mode == "always":
            self.sync()

    def _drop_unsynced(self) -> None:
        if self._conn is not None:
            self._conn.rollback()
            self._conn.close()
            self._conn = None

    # ------------------------------------------------------------------ #
    # durability barrier / recovery                                        #
    # ------------------------------------------------------------------ #

    def sync(self) -> None:
        """Commit the open transaction — the durability barrier."""
        self._require_conn().commit()

    def replay(self) -> int:
        """Rebuild the views from the committed log rows, in sequence order."""
        if self._conn is None:
            self._connect()
        self.view = {}
        self.replica_view = {}
        applied = 0
        cursor = self._require_conn().execute(
            "SELECT op, object_id, body FROM log ORDER BY seq"
        )
        for op, object_id, body in cursor:
            if op == "take":
                self._apply_record("take", object_id, None, None)
            elif op in ("put", "rput"):
                wire_key, wire_value = decode_binary(body)
                self._apply_record(
                    op, object_id, decode_value(wire_key), decode_value(wire_value)
                )
            else:
                raise StorageError(f"{self.path}: unknown log op {op!r}")
            applied += 1
        return applied

    def close(self) -> None:
        """Commit any open transaction and close the connection."""
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"SQLiteStore(path={self.path!r}, objects={self.object_count()}, "
            f"replicas={self.replica_count()})"
        )
