"""Append-only write-ahead log backend with checksummed, framed records.

File layout::

    +----------+----------------+----------------+-----
    | "AWAL1\\n" | record | record | record | ...
    +----------+----------------+----------------+-----

    record := [ length : u32 BE ][ crc32 : u32 BE ][ body : length bytes ]

The body is a :mod:`repro.binframe` value — the same stdlib
msgpack-style codec the v2 gateway negotiates, reused here so the durable
format and the wire format share one auditable encoding::

    ["put",  object_id, encode_value(key), encode_value(value)]
    ["rput", object_id, encode_value(key), encode_value(value)]
    ["take", prefix]

``encode_value`` (the tuple-tagging wire codec) wraps key and value so
tuple keys — which MIRA multi-attribute objects use — survive the binary
round trip; the CRC is over the body only, the length frames it.

Durability model
----------------
Appends accumulate in a **userspace buffer** and reach the file only in
:meth:`WALStore.sync`, which writes, flushes, and ``fsync``\\ s.  Holding
unsynced records in userspace (instead of writing them unsynced) makes
:meth:`WALStore.power_fail` exact: bytes on disk == bytes synced, with no
dependence on what the OS page cache happened to flush.  This is the
*pessimistic* model — a real ``kill -9`` preserves OS-buffered writes, so
any recovery guarantee proven under this model also holds in practice.

Replay walks records in file order, rebuilding the views via the shared
``_apply_record``.  A torn tail — truncated header, truncated body, or a
CRC mismatch on the final record, exactly what a crash mid-append leaves
behind — ends the replay at the last good record and truncates the file
there so later appends continue from a clean boundary.  Corruption
*before* the tail (a bad record followed by good ones) is not a torn
append but real damage, and raises :class:`StorageError` instead of
silently dropping acknowledged data.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, BinaryIO, List, Optional

from repro.binframe import BinaryCodecError, decode_binary, encode_binary
from repro.storage.base import StorageError, Store
from repro.wire import decode_value, encode_value

__all__ = ["WALStore", "WAL_HEADER"]

#: file magic: identifies an Armada WAL, version 1
WAL_HEADER = b"AWAL1\n"

_FRAME = struct.Struct(">II")  # length, crc32


class WALStore(Store):
    """Durable store over one append-only log file."""

    backend_name = "wal"

    def __init__(self, path: str, sync_mode: str = "always") -> None:
        """Open (or create) the log at ``path``.

        ``sync_mode`` is ``"always"`` (every write is its own durability
        barrier — what the replicated write path uses) or ``"manual"``
        (records buffer until an explicit :meth:`sync` — what the
        crash-consistency property tests use to place the barrier
        anywhere in an interleaving).
        """
        if sync_mode not in ("always", "manual"):
            raise StorageError(f"unknown sync_mode {sync_mode!r}")
        super().__init__()
        self.path = path
        self.sync_mode = sync_mode
        self._pending = bytearray()
        self._file: Optional[BinaryIO] = None
        self._open_file()

    # ------------------------------------------------------------------ #
    # file lifecycle                                                       #
    # ------------------------------------------------------------------ #

    def _open_file(self) -> None:
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = open(self.path, "ab")
        if not exists:
            self._file.write(WAL_HEADER)
            self._file.flush()
            os.fsync(self._file.fileno())

    # ------------------------------------------------------------------ #
    # logging hooks                                                        #
    # ------------------------------------------------------------------ #

    def _append(self, record: List[Any]) -> None:
        body = encode_binary(record)
        self._pending += _FRAME.pack(len(body), zlib.crc32(body))
        self._pending += body
        if self.sync_mode == "always":
            self.sync()

    def _log_record(self, op: str, object_id: str, key: Any, value: Any) -> None:
        self._append([op, object_id, encode_value(key), encode_value(value)])

    def _log_take(self, prefix: str) -> None:
        self._append(["take", prefix])

    def _drop_unsynced(self) -> None:
        self._pending.clear()
        if self._file is not None:
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------ #
    # durability barrier / recovery                                        #
    # ------------------------------------------------------------------ #

    def sync(self) -> None:
        """Write buffered records, flush, and ``fsync`` — then they are acked."""
        if not self._pending:
            return
        if self._file is None:
            raise StorageError(f"WAL {self.path} is closed")
        self._file.write(self._pending)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._pending.clear()

    def replay(self) -> int:
        """Rebuild the views from the log; returns the records applied.

        Reopens the file handle (the store may have just power-failed),
        validates the header, applies every intact record, and truncates
        a torn tail so the next append starts at a record boundary.
        """
        if self._file is not None:
            self._file.close()
            self._file = None
        self.view = {}
        self.replica_view = {}
        self._pending.clear()

        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            data = b""

        applied = 0
        good_end = len(WAL_HEADER)
        if data:
            if not data.startswith(WAL_HEADER):
                raise StorageError(f"{self.path} is not an Armada WAL (bad header)")
            offset = len(WAL_HEADER)
            total = len(data)
            while offset < total:
                if offset + _FRAME.size > total:
                    break  # torn header: crash mid-append
                length, crc = _FRAME.unpack_from(data, offset)
                body_start = offset + _FRAME.size
                body_end = body_start + length
                if body_end > total:
                    break  # torn body
                body = data[body_start:body_end]
                if zlib.crc32(body) != crc:
                    if body_end < total:
                        # Good bytes after a bad record: this is not a torn
                        # append, it is mid-log corruption of synced data.
                        raise StorageError(
                            f"{self.path}: CRC mismatch at offset {offset} "
                            "with records following it"
                        )
                    break  # torn final record
                try:
                    record = decode_binary(body)
                except BinaryCodecError as exc:
                    raise StorageError(
                        f"{self.path}: undecodable record at offset {offset}: {exc}"
                    ) from exc
                self._apply_decoded(record, offset)
                applied += 1
                offset = body_end
                good_end = offset
            if good_end < total:
                # Drop the torn tail so future appends restart cleanly.
                with open(self.path, "r+b") as handle:
                    handle.truncate(good_end)

        self._open_file()
        return applied

    def _apply_decoded(self, record: Any, offset: int) -> None:
        if not isinstance(record, list) or not record:
            raise StorageError(f"{self.path}: malformed record at offset {offset}")
        op = record[0]
        if op in ("put", "rput"):
            if len(record) != 4:
                raise StorageError(f"{self.path}: malformed {op} at offset {offset}")
            _, object_id, wire_key, wire_value = record
            self._apply_record(
                op, object_id, decode_value(wire_key), decode_value(wire_value)
            )
        elif op == "take":
            if len(record) != 2:
                raise StorageError(f"{self.path}: malformed take at offset {offset}")
            self._apply_record("take", record[1], None, None)
        else:
            raise StorageError(
                f"{self.path}: unknown record op {op!r} at offset {offset}"
            )

    def close(self) -> None:
        """Flush everything durably and release the file handle."""
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"WALStore(path={self.path!r}, objects={self.object_count()}, "
            f"replicas={self.replica_count()}, pending={len(self._pending)}B)"
        )
