"""Wire-format value codec shared by every layer.

JSON cannot tell a tuple from a list, but the protocol objects of this
repository lean on tuples in places where identity matters after a round
trip: MIRA object keys are tuples of floats, ``QueryJob.ranges`` is a tuple
of ``(low, high)`` pairs, and ``RangeQueryResult.forwarding_steps`` holds
``(sender, receiver, hop)`` triples.  :func:`encode_value` /
:func:`decode_value` preserve them by tagging tuples as
``{"__tuple__": [...]}`` — recursively, so tuples nested inside lists,
dicts or other tuples survive too.

The module sits below every other layer (it imports nothing from
``repro``), so ``fissione``, ``core``, ``engine`` and ``runtime`` can all
use the same codec without bending the dependency order.

>>> decode_value(encode_value((1.5, ("a", 2)))) == (1.5, ("a", 2))
True
>>> import json
>>> decode_value(json.loads(json.dumps(encode_value({"k": (1, 2)}))))
{'k': (1, 2)}
"""

from __future__ import annotations

from typing import Any

#: dict key reserved for the tuple tag; plain dicts must not use it
TUPLE_TAG = "__tuple__"


def encode_value(value: Any) -> Any:
    """Rewrite ``value`` into a JSON-compatible shape, tagging tuples.

    Scalars pass through, lists and dict values are encoded recursively,
    and tuples become ``{TUPLE_TAG: [...]}``.  A plain dict that already
    contains :data:`TUPLE_TAG` as a key is rejected — it would decode as a
    tuple and silently corrupt the round trip.
    """
    if isinstance(value, tuple):
        return {TUPLE_TAG: [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        if TUPLE_TAG in value:
            raise ValueError(f"dict key {TUPLE_TAG!r} is reserved by the wire codec")
        return {key: encode_value(item) for key, item in value.items()}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (after a JSON round trip)."""
    if isinstance(value, dict):
        if TUPLE_TAG in value:
            return tuple(decode_value(item) for item in value[TUPLE_TAG])
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value
