"""Workload generators: attribute values, range queries, and domain datasets."""

from repro.workloads.datasets import (
    GridResource,
    StudentScore,
    generate_grid_resources,
    generate_student_scores,
)
from repro.workloads.queries import (
    MultiAttributeQueryWorkload,
    RangeQueryWorkload,
)
from repro.workloads.values import (
    clustered_values,
    normal_values,
    uniform_values,
    zipf_values,
)

__all__ = [
    "GridResource",
    "StudentScore",
    "generate_grid_resources",
    "generate_student_scores",
    "MultiAttributeQueryWorkload",
    "RangeQueryWorkload",
    "clustered_values",
    "normal_values",
    "uniform_values",
    "zipf_values",
]
