"""Workload generators: values, range queries, arrivals, churn, datasets."""

from repro.workloads.arrivals import (
    ChurnEvent,
    ChurnSchedule,
    periodic_churn,
    poisson_arrival_times,
    uniform_arrival_times,
    zipf_range_queries,
)
from repro.workloads.datasets import (
    GridResource,
    StudentScore,
    generate_grid_resources,
    generate_student_scores,
)
from repro.workloads.queries import (
    MultiAttributeQueryWorkload,
    RangeQueryWorkload,
)
from repro.workloads.values import (
    clustered_values,
    normal_values,
    uniform_values,
    zipf_values,
)

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "periodic_churn",
    "poisson_arrival_times",
    "uniform_arrival_times",
    "zipf_range_queries",
    "GridResource",
    "StudentScore",
    "generate_grid_resources",
    "generate_student_scores",
    "MultiAttributeQueryWorkload",
    "RangeQueryWorkload",
    "clustered_values",
    "normal_values",
    "uniform_values",
    "zipf_values",
]
