"""Arrival processes, skewed query mixes and churn schedules.

The concurrent query engine consumes *time-stamped* workloads: every query
job carries an arrival instant on the simulator clock, and churn is a list
of timed join/leave events.  This module generates them deterministically
from a :class:`~repro.sim.rng.DeterministicRNG`:

* :func:`poisson_arrival_times` — open-loop Poisson process at a given
  offered rate (exponential inter-arrivals);
* :func:`uniform_arrival_times` — evenly spaced arrivals at a given rate
  (deterministic pacing, useful as a noise-free baseline);
* :func:`zipf_range_queries` — range queries whose *positions* are
  Zipf-skewed across the attribute interval, producing the hot-spot access
  patterns real workloads show;
* :class:`ChurnSchedule` / :func:`periodic_churn` — timed join/leave events
  to interleave with in-flight queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.sim.rng import DeterministicRNG


def poisson_arrival_times(
    rng: DeterministicRNG,
    rate: float,
    count: int,
    start: float = 0.0,
) -> List[float]:
    """``count`` arrival instants of a Poisson process with the given rate.

    ``rate`` is in queries per simulated time unit; inter-arrival gaps are
    exponential with mean ``1 / rate``.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    times: List[float] = []
    now = start
    for _ in range(count):
        now += rng.exponential(1.0 / rate)
        times.append(now)
    return times


def uniform_arrival_times(rate: float, count: int, start: float = 0.0) -> List[float]:
    """``count`` evenly spaced arrivals at the given rate (first at ``start``)."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    gap = 1.0 / rate
    return [start + index * gap for index in range(count)]


def zipf_range_queries(
    rng: DeterministicRNG,
    count: int,
    range_size: float,
    low: float = 0.0,
    high: float = 1000.0,
    alpha: float = 1.1,
    buckets: int = 100,
) -> List[Tuple[float, float]]:
    """``count`` fixed-size ranges whose positions are Zipf-skewed.

    The attribute interval is split into ``buckets`` equal sub-intervals;
    each query picks a bucket from a truncated Zipf distribution (bucket 1
    hottest) and a uniform position within it, so a small part of the
    attribute space receives most of the queries — the skew the engine's
    load experiments need.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if high < low:
        raise ValueError("empty attribute interval")
    if range_size < 0 or range_size > (high - low):
        raise ValueError("range_size must fit inside the attribute interval")
    if buckets < 1:
        raise ValueError("need at least one bucket")
    width = (high - low) / buckets
    queries: List[Tuple[float, float]] = []
    for _ in range(count):
        rank = rng.zipf(alpha, buckets) - 1
        bucket_low = low + rank * width
        bucket_high = min(high, bucket_low + width)
        span_high = max(bucket_low, min(bucket_high, high - range_size))
        start = rng.uniform(bucket_low, span_high) if span_high > bucket_low else bucket_low
        start = min(start, high - range_size)
        queries.append((start, start + range_size))
    return queries


@dataclass(frozen=True)
class ChurnEvent:
    """One timed membership change: ``count`` peers join or leave at ``time``."""

    time: float
    kind: str  # "join" | "leave"
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave"):
            raise ValueError(f"kind must be 'join' or 'leave', got {self.kind!r}")
        if self.time < 0:
            raise ValueError("time must be non-negative")
        if self.count < 1:
            raise ValueError("count must be positive")


@dataclass
class ChurnSchedule:
    """An ordered list of churn events plus small composition helpers."""

    events: List[ChurnEvent] = field(default_factory=list)

    def add(self, event: ChurnEvent) -> "ChurnSchedule":
        """Append one event (kept sorted by time)."""
        self.events.append(event)
        self.events.sort(key=lambda entry: entry.time)
        return self

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def total_joins(self) -> int:
        """Total peers joining across the schedule."""
        return sum(event.count for event in self.events if event.kind == "join")

    def total_leaves(self) -> int:
        """Total peers departing across the schedule."""
        return sum(event.count for event in self.events if event.kind == "leave")


def periodic_churn(
    period: float,
    until: float,
    joins: int = 1,
    leaves: int = 1,
    start: float = 0.0,
) -> ChurnSchedule:
    """A schedule alternating ``joins`` joins and ``leaves`` leaves each period.

    Events are placed at ``start + period, start + 2 * period, ...`` up to
    ``until`` (exclusive), the join preceding the leave at each instant so
    the network size stays balanced.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    schedule = ChurnSchedule()
    time = start + period
    while time < until:
        if joins > 0:
            schedule.add(ChurnEvent(time=time, kind="join", count=joins))
        if leaves > 0:
            schedule.add(ChurnEvent(time=time, kind="leave", count=leaves))
        time += period
    return schedule
