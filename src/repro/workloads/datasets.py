"""Domain datasets matching the applications the paper's introduction cites.

Two of the motivating examples are implemented as reusable dataset
generators:

* P2P data management systems with queries like "70 <= score <= 80"
  (:func:`generate_student_scores`),
* grid information services with queries like
  "1GB <= Memory <= 4GB and 50GB <= disk <= 200GB"
  (:func:`generate_grid_resources`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.sim.rng import DeterministicRNG
from repro.workloads.values import normal_values


@dataclass(frozen=True)
class StudentScore:
    """One record of the score dataset."""

    student_id: str
    score: float


@dataclass(frozen=True)
class GridResource:
    """One machine advertised in a grid information service."""

    host: str
    memory_gb: float
    disk_gb: float
    cpu_ghz: float

    def as_tuple(self) -> Tuple[float, float, float]:
        """Attribute tuple in (memory, disk, cpu) order."""
        return (self.memory_gb, self.disk_gb, self.cpu_ghz)


def generate_student_scores(
    rng: DeterministicRNG,
    count: int,
    mean: float = 72.0,
    stddev: float = 12.0,
) -> List[StudentScore]:
    """Scores between 0 and 100 with a realistic bell shape around ``mean``."""
    scores = normal_values(rng, count, mean=mean, stddev=stddev, low=0.0, high=100.0)
    return [
        StudentScore(student_id=f"student-{index:05d}", score=round(score, 1))
        for index, score in enumerate(scores)
    ]


#: common machine configurations (memory GB, disk GB, cpu GHz) and their weights
_GRID_PROFILES: List[Tuple[Tuple[float, float, float], float]] = [
    ((1.0, 80.0, 1.8), 0.15),
    ((2.0, 160.0, 2.2), 0.25),
    ((4.0, 250.0, 2.6), 0.25),
    ((8.0, 500.0, 3.0), 0.20),
    ((16.0, 1000.0, 3.4), 0.10),
    ((32.0, 2000.0, 3.8), 0.05),
]


def generate_grid_resources(rng: DeterministicRNG, count: int) -> List[GridResource]:
    """Machines drawn from common configuration profiles with ±20% jitter."""
    if count < 0:
        raise ValueError("count must be non-negative")
    resources: List[GridResource] = []
    total_weight = sum(weight for _profile, weight in _GRID_PROFILES)
    for index in range(count):
        pick = rng.uniform(0.0, total_weight)
        cumulative = 0.0
        chosen = _GRID_PROFILES[-1][0]
        for profile, weight in _GRID_PROFILES:
            cumulative += weight
            if pick <= cumulative:
                chosen = profile
                break
        memory, disk, cpu = chosen
        jitter = lambda value: value * rng.uniform(0.8, 1.2)  # noqa: E731 - tiny local helper
        resources.append(
            GridResource(
                host=f"node-{index:05d}.grid.example",
                memory_gb=round(min(jitter(memory), 64.0), 2),
                disk_gb=round(min(jitter(disk), 4000.0), 1),
                cpu_ghz=round(min(jitter(cpu), 5.0), 2),
            )
        )
    return resources
