"""Range-query workloads.

The paper's measurements average 1000 range queries per data point; each
query has a fixed *range size* and a uniformly random position within the
attribute interval, and is issued from a uniformly random peer.  The
generators here reproduce that, plus a multi-attribute variant for the MIRA
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.sim.rng import DeterministicRNG


@dataclass
class RangeQueryWorkload:
    """Single-attribute range queries of a fixed size within ``[low, high]``."""

    range_size: float
    low: float = 0.0
    high: float = 1000.0
    count: int = 1000

    def __post_init__(self) -> None:
        if self.range_size < 0:
            raise ValueError("range_size must be non-negative")
        if self.high < self.low:
            raise ValueError("empty attribute interval")
        if self.range_size > (self.high - self.low):
            raise ValueError("range_size exceeds the attribute interval width")
        if self.count < 0:
            raise ValueError("count must be non-negative")

    def queries(self, rng: DeterministicRNG) -> Iterator[Tuple[float, float]]:
        """Generate ``count`` random ``(low, high)`` query ranges."""
        for _ in range(self.count):
            start = rng.uniform(self.low, self.high - self.range_size)
            yield (start, start + self.range_size)

    def as_list(self, rng: DeterministicRNG) -> List[Tuple[float, float]]:
        """Materialised list of the query ranges."""
        return list(self.queries(rng))


@dataclass
class MultiAttributeQueryWorkload:
    """Multi-attribute box queries with per-attribute range sizes."""

    range_sizes: Sequence[float]
    intervals: Sequence[Tuple[float, float]]
    count: int = 1000

    def __post_init__(self) -> None:
        if len(self.range_sizes) != len(self.intervals):
            raise ValueError("range_sizes and intervals must have equal length")
        if self.count < 0:
            raise ValueError("count must be non-negative")
        for size, (low, high) in zip(self.range_sizes, self.intervals):
            if size < 0 or size > (high - low):
                raise ValueError(f"range size {size} invalid for interval [{low}, {high}]")

    def queries(self, rng: DeterministicRNG) -> Iterator[List[Tuple[float, float]]]:
        """Generate ``count`` random boxes (one (low, high) pair per attribute)."""
        for _ in range(self.count):
            box: List[Tuple[float, float]] = []
            for size, (low, high) in zip(self.range_sizes, self.intervals):
                start = rng.uniform(low, high - size)
                box.append((start, start + size))
            yield box

    def as_list(self, rng: DeterministicRNG) -> List[List[Tuple[float, float]]]:
        """Materialised list of the query boxes."""
        return list(self.queries(rng))
