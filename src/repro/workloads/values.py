"""Attribute-value generators.

The paper publishes objects with attribute values drawn from ``[0, 1000]``.
Besides the uniform distribution used in the simulations, skewed generators
(Zipf-clustered, truncated normal) are provided for the load-balance tests
and the domain examples.
"""

from __future__ import annotations

import math
from typing import List

from repro.sim.rng import DeterministicRNG


def uniform_values(rng: DeterministicRNG, count: int, low: float = 0.0, high: float = 1000.0) -> List[float]:
    """``count`` values uniform over ``[low, high]``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if high < low:
        raise ValueError("empty interval")
    return [rng.uniform(low, high) for _ in range(count)]


def normal_values(
    rng: DeterministicRNG,
    count: int,
    mean: float = 500.0,
    stddev: float = 150.0,
    low: float = 0.0,
    high: float = 1000.0,
) -> List[float]:
    """``count`` values from a normal distribution truncated to ``[low, high]``.

    Sampling uses the Box-Muller transform on the deterministic stream so the
    workload stays reproducible.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    values: List[float] = []
    while len(values) < count:
        u1 = max(rng.random(), 1e-12)
        u2 = rng.random()
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        value = mean + stddev * z
        if low <= value <= high:
            values.append(value)
    return values


def zipf_values(
    rng: DeterministicRNG,
    count: int,
    alpha: float = 1.1,
    buckets: int = 100,
    low: float = 0.0,
    high: float = 1000.0,
) -> List[float]:
    """``count`` values Zipf-skewed across ``buckets`` equal sub-intervals.

    Bucket ranks are drawn from a truncated Zipf distribution; within the
    chosen bucket values are uniform, producing the hot-spot pattern used by
    the load-balance tests.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if buckets < 1:
        raise ValueError("need at least one bucket")
    width = (high - low) / buckets
    values: List[float] = []
    for _ in range(count):
        rank = rng.zipf(alpha, buckets) - 1
        start = low + rank * width
        values.append(rng.uniform(start, start + width))
    return values


def clustered_values(
    rng: DeterministicRNG,
    count: int,
    centers: List[float],
    spread: float = 10.0,
    low: float = 0.0,
    high: float = 1000.0,
) -> List[float]:
    """Values clustered around the given centres (uniform within ±spread)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if not centers:
        raise ValueError("need at least one cluster centre")
    values: List[float] = []
    for _ in range(count):
        center = rng.choice(centers)
        value = rng.uniform(center - spread, center + spread)
        values.append(min(high, max(low, value)))
    return values
