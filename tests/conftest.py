"""Shared fixtures for the test suite.

Expensive structures (built networks, loaded systems) use session scope so
the several hundred tests stay fast; tests that mutate topology build their
own instances instead of using these fixtures.
"""

from __future__ import annotations

import pytest

from repro.core.armada import ArmadaSystem
from repro.fissione.network import FissioneNetwork
from repro.sim.rng import DeterministicRNG


@pytest.fixture()
def rng() -> DeterministicRNG:
    """A fresh deterministic RNG for each test."""
    return DeterministicRNG(12345)


@pytest.fixture(scope="session")
def small_network() -> FissioneNetwork:
    """A 64-peer FISSIONE network (read-only in tests)."""
    return FissioneNetwork.build(64, DeterministicRNG(7).substream("topology"), object_id_length=24)


@pytest.fixture(scope="session")
def medium_network() -> FissioneNetwork:
    """A 400-peer FISSIONE network (read-only in tests)."""
    return FissioneNetwork.build(400, DeterministicRNG(17).substream("topology"), object_id_length=32)


@pytest.fixture(scope="session")
def loaded_system() -> ArmadaSystem:
    """A 200-peer Armada system pre-loaded with a regular grid of values."""
    system = ArmadaSystem(num_peers=200, seed=3, attribute_interval=(0.0, 1000.0))
    system.insert_many([float(value) for value in range(0, 1000, 5)])
    return system


@pytest.fixture(scope="session")
def multi_system() -> ArmadaSystem:
    """A 150-peer Armada system configured for 2-attribute objects and loaded."""
    system = ArmadaSystem(
        num_peers=150,
        seed=9,
        attribute_interval=(0.0, 100.0),
        attribute_intervals=((0.0, 100.0), (0.0, 100.0)),
    )
    rng = DeterministicRNG(9).substream("multi-values")
    records = [
        (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)) for _ in range(600)
    ]
    for record in records:
        system.insert_multi(record, payload=record)
    system.multi_records = records  # type: ignore[attr-defined]
    return system
