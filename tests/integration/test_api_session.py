"""The acceptance bar of the API-redesign PR: one ``Session`` surface.

Everything here runs through :mod:`repro.api` only — no direct executor,
engine or client calls — because that is the redesign's contract:

* the N=32 sim≡live equivalence holds when *both* sides are driven
  through the session API (``SimSession`` vs a pooled v2 ``LiveSession``,
  including the object publication);
* a single protocol-v2 connection really pipelines: ≥ 4 requests
  concurrently in flight, replies completing out of order;
* streaming (``chunk`` frames / sim callbacks), ``batch`` submission and
  the ``replicas`` option behave identically on both backends.
"""

from __future__ import annotations

import asyncio

from repro.api import RangeQuery
from repro.api.live import LiveSession
from repro.api.requests import Chunk, InsertReply, PongReply, QueryReply
from repro.api.sim import SimSession
from repro.core.armada import ArmadaSystem
from repro.runtime.cluster import LiveCluster
from repro.runtime.gateway import Gateway
from repro.runtime.protocol import encode_frame, hello_frame, read_frame
from repro.sim.rng import DeterministicRNG

SEED = 7
INTERVALS = ((0.0, 1000.0), (0.0, 1000.0))
VALUES = [float(v) for v in range(0, 1000, 25)]
MULTI_VALUES = [(float(v), float(1000 - v)) for v in range(0, 1000, 100)]


async def seed_through_session(session) -> None:
    """Publish the reference population through the session API itself."""
    for value in VALUES:
        reply = await session.insert(value)
        assert isinstance(reply, InsertReply) and reply.object_id
    for pair in MULTI_VALUES:
        reply = await session.insert_multi(pair)
        assert isinstance(reply, InsertReply) and reply.object_id


async def boot_live(num_peers: int, pool: int = 2):
    cluster = LiveCluster(num_peers=num_peers, seed=SEED, attribute_intervals=INTERVALS)
    await cluster.start()
    gateway = await Gateway(cluster).start()
    session = await LiveSession.connect(*gateway.address, pool=pool)
    return cluster, gateway, session


def make_sim_session(num_peers: int) -> SimSession:
    return SimSession(
        ArmadaSystem(num_peers=num_peers, seed=SEED, attribute_intervals=INTERVALS)
    )


class TestSimLiveEquivalenceThroughSession:
    def test_n32_identical_results_via_session_api(self):
        """Both backends behind ``Session``; same queries, identical results."""

        async def scenario():
            sim = make_sim_session(32)
            cluster, gateway, live = await boot_live(32)
            try:
                assert sorted(cluster.network.peer_ids()) == sorted(
                    sim.system.network.peer_ids()
                ), "bootstrap must replay the simulator's topology"
                await seed_through_session(sim)
                await seed_through_session(live)

                rng = DeterministicRNG(1234)
                origins = sorted(cluster.network.peer_ids())
                for index, origin in enumerate(origins):
                    low = rng.uniform(0.0, 800.0)
                    high = low + rng.uniform(1.0, 150.0)
                    sim_reply = await sim.range(low, high, origin=origin)
                    live_reply = await live.range(low, high, origin=origin)
                    for reply in (sim_reply, live_reply):
                        assert isinstance(reply, QueryReply)
                        assert reply.status == "ok" and reply.ok
                    assert live_reply.result.destinations == sim_reply.result.destinations
                    assert sorted(live_reply.result.matching_values()) == sorted(
                        sim_reply.result.matching_values()
                    )
                    assert live_reply.result.messages == sim_reply.result.messages
                    assert live_reply.result.delay_hops == sim_reply.result.delay_hops

                    if index % 4 == 0:  # interleave MIRA boxes
                        box = ((low, high), (100.0, 900.0))
                        sim_m = await sim.multi_range(box, origin=origin)
                        live_m = await live.multi_range(box, origin=origin)
                        assert live_m.result.destinations == sim_m.result.destinations
                        assert sorted(live_m.result.matching_values()) == sorted(
                            sim_m.result.matching_values()
                        )
                        assert live_m.result.messages == sim_m.result.messages
                        assert live_m.result.delay_hops == sim_m.result.delay_hops
            finally:
                await live.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())

    def test_streaming_chunks_agree_between_backends(self):
        """``stream=True``: per-destination chunks, identical on both sides."""

        async def scenario():
            sim = make_sim_session(16)
            cluster, gateway, live = await boot_live(16, pool=1)
            try:
                await seed_through_session(sim)
                await seed_through_session(live)
                sim_chunks: list = []
                live_chunks: list = []
                origin = sorted(cluster.network.peer_ids())[0]
                sim_reply = await sim.range(
                    100.0, 700.0, origin=origin, on_chunk=sim_chunks.append
                )
                live_reply = await live.range(
                    100.0, 700.0, origin=origin, on_chunk=live_chunks.append
                )

                assert sim_reply.chunks == len(sim_chunks) > 0
                assert live_reply.chunks == len(live_chunks) > 0
                for chunk in sim_chunks + live_chunks:
                    assert isinstance(chunk, Chunk)
                # One chunk per destination peer, carrying that peer's new
                # matches — summing them reassembles the full result set.
                assert {c.peer for c in live_chunks} == set(
                    live_reply.result.destinations
                )
                assert sorted((c.peer, c.hop) for c in live_chunks) == sorted(
                    (c.peer, c.hop) for c in sim_chunks
                )
                assert sorted(
                    value for c in live_chunks for value in c.values
                ) == sorted(live_reply.result.matching_values())
            finally:
                await live.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())

    def test_replicas_option_on_both_backends(self):
        """``replicas=3`` returns the best of three executions on either side."""

        async def scenario():
            sim = make_sim_session(16)
            cluster, gateway, live = await boot_live(16)
            try:
                await seed_through_session(sim)
                await seed_through_session(live)
                baseline = await sim.range(200.0, 600.0)
                for session in (sim, live):
                    reply = await session.range(200.0, 600.0, replicas=3)
                    assert reply.status == "ok"
                    assert sorted(reply.result.matching_values()) == sorted(
                        baseline.result.matching_values()
                    )
            finally:
                await live.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())


class TestPipelining:
    def test_four_plus_in_flight_out_of_order_on_one_connection(self):
        """The multiplexing proof: one v2 connection, ≥ 4 concurrent
        requests, replies completing out of submission order."""

        async def scenario():
            cluster, gateway, session = await boot_live(16, pool=1)
            try:
                assert session.pool_size == 1
                await seed_through_session(session)

                completion_order: list = []

                async def tracked(tag: str, coroutine) -> None:
                    await coroutine
                    completion_order.append(tag)

                # Eight broad queries (multi-hop, real socket round trips)
                # submitted before one ping, all on the same connection.  The
                # gateway answers the ping immediately while every query is
                # still waiting on the cluster — so the last-submitted
                # request completes first: out-of-order by construction.
                queries = [
                    tracked(f"q{i}", session.range(50.0 + i, 950.0 - i))
                    for i in range(8)
                ]
                await asyncio.gather(*queries, tracked("ping", session.ping()))

                assert len(completion_order) == 9
                assert completion_order.index("ping") < 5, (
                    "the ping was submitted last; completing it before the "
                    "earlier-submitted queries is the out-of-order proof, got "
                    f"{completion_order}"
                )
                # the client saw ≥ 4 requests concurrently awaiting replies
                assert session.peak_in_flight >= 4
                # ... and so did the gateway, on that single connection
                stats = await session.stats()
                assert stats["peak_in_flight"] >= 4
                assert stats["v2_connections"] == 1
            finally:
                await session.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())

    def test_raw_frames_reply_out_of_order(self):
        """Frame-level version of the same proof, with no client machinery:
        a ping posted after four queries is answered before them."""

        async def scenario():
            cluster = LiveCluster(
                num_peers=16, seed=SEED, attribute_intervals=INTERVALS
            )
            await cluster.start()
            gateway = await Gateway(cluster).start()
            try:
                reader, writer = await asyncio.open_connection(*gateway.address)
                writer.write(encode_frame(hello_frame()))
                await writer.drain()
                welcome = await read_frame(reader)
                assert welcome["type"] == "welcome"

                for rid in range(1, 5):
                    writer.write(
                        encode_frame(
                            {
                                "type": "request",
                                "rid": rid,
                                "request": {"op": "range", "low": 0.0, "high": 900.0},
                            }
                        )
                    )
                writer.write(
                    encode_frame(
                        {"type": "request", "rid": 99, "request": {"op": "ping"}}
                    )
                )
                await writer.drain()

                received = []
                while len(received) < 5:
                    frame = await read_frame(reader)
                    assert frame["type"] == "reply"
                    assert frame["payload"]["ok"] is True
                    received.append(frame["rid"])
                assert sorted(received) == [1, 2, 3, 4, 99]
                assert received[-1] != 99, (
                    f"rid 99 (ping) was submitted last but must not finish "
                    f"last on a multiplexed connection, got order {received}"
                )
                writer.close()
            finally:
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())


class TestBatch:
    def test_batch_mixes_ops_and_preserves_request_order(self):
        """One ``batch`` call: replies come back typed, in request order."""
        from repro.api.requests import Insert, MultiRangeQuery, Ping

        async def scenario():
            cluster, gateway, session = await boot_live(8, pool=2)
            try:
                requests: list = [Insert(value=250.0), Insert(value=750.0)]
                requests += [
                    RangeQuery(low=0.0, high=500.0),
                    MultiRangeQuery(ranges=((0.0, 1000.0), (0.0, 1000.0))),
                    Ping(),
                ]
                replies = await session.batch(requests)
                assert len(replies) == len(requests)
                assert isinstance(replies[0], InsertReply)
                assert isinstance(replies[1], InsertReply)
                assert isinstance(replies[2], QueryReply)
                assert replies[2].result.matching_values() == [250.0]
                assert isinstance(replies[3], QueryReply)
                assert isinstance(replies[4], PongReply)
            finally:
                await session.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())

    def test_batch_on_sim_session_matches_live(self):
        """The generic (sim) batch path returns the same typed replies."""
        from repro.api.requests import Insert

        async def scenario():
            sim = make_sim_session(8)
            replies = await sim.batch(
                [Insert(value=100.0), RangeQuery(low=0.0, high=500.0)]
            )
            assert isinstance(replies[0], InsertReply)
            assert isinstance(replies[1], QueryReply)
            assert replies[1].result.matching_values() == [100.0]

        asyncio.run(scenario())
