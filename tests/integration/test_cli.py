"""Integration tests for the armada-repro command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import build_parser, main, make_config, run_command
from repro.experiments.common import ExperimentConfig


class TestArgumentHandling:
    def test_parser_accepts_all_commands(self):
        parser = build_parser()
        for command in ("table1", "figures-rangesize", "figures-netsize", "analytics",
                        "fissione", "mira", "ablation", "load", "all"):
            assert parser.parse_args([command]).command == command

    def test_rates_parsing(self):
        from repro.cli import parse_rates

        assert parse_rates(None) is None
        assert parse_rates("0.5,1,2") == (0.5, 1.0, 2.0)
        with pytest.raises(SystemExit):
            parse_rates("fast")
        with pytest.raises(SystemExit):
            parse_rates("-1,2")

    def test_churn_flag(self):
        parser = build_parser()
        assert parser.parse_args(["load", "--churn"]).churn is True
        assert parser.parse_args(["load"]).churn is False

    def test_profile_selection(self):
        parser = build_parser()
        quick = make_config(parser.parse_args(["table1", "--profile", "quick"]))
        paper = make_config(parser.parse_args(["table1", "--profile", "paper"]))
        default = make_config(parser.parse_args(["table1"]))
        assert quick.peers < default.peers
        assert paper.queries_per_point == 1000

    def test_overrides(self):
        parser = build_parser()
        config = make_config(
            parser.parse_args(
                ["table1", "--peers", "123", "--queries", "7", "--objects", "50", "--seed", "9"]
            )
        )
        assert config.peers == 123
        assert config.queries_per_point == 7
        assert config.objects == 50
        assert config.seed == 9

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestExecution:
    TINY = ExperimentConfig(
        peers=120,
        queries_per_point=8,
        objects=200,
        range_sizes=(10, 100),
        network_sizes=(60, 120),
        fixed_range_size=20.0,
    )

    def test_run_command_fissione(self):
        output = run_command("fissione", self.TINY)
        assert "FISSIONE" in output

    def test_run_command_figures_with_csv(self, tmp_path):
        output = run_command("figures-rangesize", self.TINY, csv_dir=str(tmp_path))
        assert "Figure 5" in output
        assert os.path.exists(tmp_path / "figure5.csv")
        assert os.path.exists(tmp_path / "figure6a.csv")

    def test_main_prints_output(self, capsys):
        exit_code = main(
            [
                "fissione",
                "--profile",
                "quick",
                "--peers",
                "80",
                "--queries",
                "5",
                "--objects",
                "100",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "FISSIONE" in captured.out

    def test_run_command_unknown_raises(self):
        with pytest.raises(ValueError):
            run_command("nonsense", self.TINY)

    def test_run_command_load(self, tmp_path):
        output = run_command(
            "load", self.TINY, csv_dir=str(tmp_path), rates=(2.0, 8.0), churn=False
        )
        assert "Concurrent load sweep" in output
        assert "Throughput vs offered load" in output
        assert os.path.exists(tmp_path / "load.csv")

    def test_run_command_load_with_churn(self):
        output = run_command("load", self.TINY, rates=(4.0,), churn=True)
        assert "with churn" in output
