"""Integration tests for the armada-repro command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import (
    build_parser,
    main,
    make_config,
    make_serve_settings,
    make_soak_spec,
    make_trace_spec,
    run_command,
)
from repro.experiments.common import ExperimentConfig


class TestArgumentHandling:
    def test_parser_accepts_all_commands(self):
        parser = build_parser()
        for command in ("table1", "figures-rangesize", "figures-netsize", "analytics",
                        "fissione", "mira", "ablation", "load", "sweep", "faults",
                        "serve", "soak", "trace", "all"):
            assert parser.parse_args([command]).command == command

    def test_rates_parsing(self):
        from repro.cli import parse_rates

        assert parse_rates(None) is None
        assert parse_rates("0.5,1,2") == (0.5, 1.0, 2.0)
        with pytest.raises(SystemExit):
            parse_rates("fast")
        with pytest.raises(SystemExit):
            parse_rates("-1,2")

    def test_churn_flag(self):
        parser = build_parser()
        assert parser.parse_args(["load", "--churn"]).churn is True
        assert parser.parse_args(["load"]).churn is False

    def test_profile_selection(self):
        parser = build_parser()
        quick = make_config(parser.parse_args(["table1", "--profile", "quick"]))
        paper = make_config(parser.parse_args(["table1", "--profile", "paper"]))
        default = make_config(parser.parse_args(["table1"]))
        assert quick.peers < default.peers
        assert paper.queries_per_point == 1000

    def test_overrides(self):
        parser = build_parser()
        config = make_config(
            parser.parse_args(
                ["table1", "--peers", "123", "--queries", "7", "--objects", "50", "--seed", "9"]
            )
        )
        assert config.peers == 123
        assert config.queries_per_point == 7
        assert config.objects == 50
        assert config.seed == 9

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_serve_soak_defaults(self):
        parser = build_parser()
        config = ExperimentConfig()
        serve = make_serve_settings(parser.parse_args(["serve"]), config)
        assert serve.peers == 32
        assert serve.port == 7411
        assert serve.deadline == 5.0
        soak = make_soak_spec(parser.parse_args(["soak"]), config)
        assert soak.peers == 32
        assert soak.queries == 1000
        assert soak.nodes == 8
        assert soak.concurrency == 16

    def test_serve_soak_overrides(self):
        parser = build_parser()
        config = ExperimentConfig()
        args = parser.parse_args(
            ["soak", "--peers", "16", "--queries", "200", "--nodes", "4",
             "--concurrency", "8", "--mira-fraction", "0.5", "--deadline", "2.5"]
        )
        spec = make_soak_spec(args, make_config(args))
        assert (spec.peers, spec.queries, spec.nodes) == (16, 200, 4)
        assert (spec.concurrency, spec.mira_fraction, spec.deadline) == (8, 0.5, 2.5)

    def test_observability_flags_reach_the_specs(self):
        parser = build_parser()
        config = ExperimentConfig()
        serve = make_serve_settings(
            parser.parse_args(
                ["serve", "--metrics-port", "9109", "--log-level", "debug", "--log-json"]
            ),
            config,
        )
        assert serve.metrics_port == 9109
        assert serve.log_level == "debug"
        assert serve.log_json is True
        assert make_serve_settings(parser.parse_args(["serve"]), config).metrics_port is None
        soak = make_soak_spec(
            parser.parse_args(
                ["soak", "--metrics-port", "0", "--trace-out", "trace.json"]
            ),
            config,
        )
        assert soak.metrics_port == 0
        assert soak.trace_out == "trace.json"

    def test_trace_defaults_and_overrides(self):
        parser = build_parser()
        config = ExperimentConfig()
        spec = make_trace_spec(parser.parse_args(["trace"]), config)
        assert spec.connect is None
        assert (spec.low, spec.high) == (400.0, 420.0)
        spec = make_trace_spec(
            parser.parse_args(
                ["trace", "--low", "10", "--high", "50", "--connect",
                 "127.0.0.1:7411", "--origin", "012", "--trace-jsonl", "t.jsonl"]
            ),
            config,
        )
        assert spec.address == ("127.0.0.1", 7411)
        assert spec.origin == "012"
        assert spec.trace_jsonl == "t.jsonl"


class TestParseErrors:
    """Every subcommand's bad arguments must exit non-zero with a usable
    message (a SystemExit carrying text), never a traceback."""

    def run_main_expecting_exit(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        code = excinfo.value.code
        # argparse exits with 2; our validators exit with a message string
        assert code not in (0, None)
        if isinstance(code, str):
            assert code.strip(), "error message must not be empty"
        return code

    # -- load ---------------------------------------------------------------

    def test_load_bad_rates(self):
        message = self.run_main_expecting_exit(["load", "--rates", "fast"])
        assert "rates" in str(message)

    def test_load_negative_rates(self):
        message = self.run_main_expecting_exit(["load", "--rates=-1,2"])
        assert "positive" in str(message)

    # -- sweep --------------------------------------------------------------

    def test_sweep_unknown_scheme(self):
        message = self.run_main_expecting_exit(
            ["sweep", "--profile", "quick", "--schemes", "frobnicate"]
        )
        assert "frobnicate" in str(message)

    def test_sweep_bad_network_sizes(self):
        message = self.run_main_expecting_exit(
            ["sweep", "--profile", "quick", "--network-sizes", "abc"]
        )
        assert "--network-sizes" in str(message)

    def test_sweep_rejects_faults_flag(self):
        message = self.run_main_expecting_exit(
            ["sweep", "--profile", "quick", "--scheme", "pira"]
        )
        assert "--schemes" in str(message)

    # -- faults -------------------------------------------------------------

    def test_faults_unknown_variant(self):
        message = self.run_main_expecting_exit(
            ["faults", "--profile", "quick", "--scheme", "bogus"]
        )
        assert "bogus" in str(message)

    def test_faults_bad_fraction(self):
        message = self.run_main_expecting_exit(
            ["faults", "--profile", "quick", "--failed-fraction", "2.0"]
        )
        assert "0.9" in str(message)

    def test_faults_rejects_sweep_flag(self):
        message = self.run_main_expecting_exit(
            ["faults", "--profile", "quick", "--schemes", "pira"]
        )
        assert "--scheme" in str(message)

    # -- serve --------------------------------------------------------------

    def test_serve_too_few_peers(self):
        message = self.run_main_expecting_exit(["serve", "--peers", "2"])
        assert "at least 3 peers" in str(message)

    def test_serve_bad_port(self):
        message = self.run_main_expecting_exit(["serve", "--port", "70000"])
        assert "port" in str(message)

    def test_serve_bad_nodes(self):
        message = self.run_main_expecting_exit(["serve", "--nodes", "0"])
        assert "nodes" in str(message)

    def test_serve_bad_deadline(self):
        message = self.run_main_expecting_exit(["serve", "--deadline", "0"])
        assert "deadline" in str(message)

    # -- soak ---------------------------------------------------------------

    def test_soak_zero_queries(self):
        message = self.run_main_expecting_exit(["soak", "--queries", "0"])
        assert "quer" in str(message)

    def test_soak_bad_concurrency(self):
        message = self.run_main_expecting_exit(["soak", "--concurrency", "0"])
        assert "concurrency" in str(message)

    def test_soak_bad_mira_fraction(self):
        message = self.run_main_expecting_exit(["soak", "--mira-fraction", "1.5"])
        assert "mira" in str(message)

    def test_soak_bad_require_success(self):
        message = self.run_main_expecting_exit(["soak", "--require-success", "3"])
        assert "--require-success" in str(message)

    def test_non_numeric_flag_exits_cleanly(self):
        # argparse-level type errors (exit code 2, message on stderr)
        self.run_main_expecting_exit(["soak", "--queries", "many"])

    # -- observability flags ------------------------------------------------

    def test_serve_bad_metrics_port(self):
        message = self.run_main_expecting_exit(["serve", "--metrics-port", "70000"])
        assert "metrics" in str(message)

    def test_soak_bad_metrics_port(self):
        message = self.run_main_expecting_exit(["soak", "--metrics-port", "-1"])
        assert "metrics" in str(message)

    def test_trace_inverted_range(self):
        message = self.run_main_expecting_exit(["trace", "--low", "5", "--high", "1"])
        assert "range" in str(message)

    def test_trace_bad_connect(self):
        message = self.run_main_expecting_exit(["trace", "--connect", "nowhere"])
        assert "HOST:PORT" in str(message)


class TestExecution:
    TINY = ExperimentConfig(
        peers=120,
        queries_per_point=8,
        objects=200,
        range_sizes=(10, 100),
        network_sizes=(60, 120),
        fixed_range_size=20.0,
    )

    def test_run_command_fissione(self):
        output = run_command("fissione", self.TINY)
        assert "FISSIONE" in output

    def test_trace_command_prints_span_tree(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        exit_code = main(
            [
                "trace",
                "--peers", "32",
                "--objects", "100",
                "--low", "100",
                "--high", "160",
                "--trace-out", str(out_path),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "Traced range query" in captured
        assert "pira" in captured
        assert "hop " in captured
        import json as json_module

        payload = json_module.loads(out_path.read_text())
        assert payload["traceEvents"]

    def test_run_command_figures_with_csv(self, tmp_path):
        output = run_command("figures-rangesize", self.TINY, csv_dir=str(tmp_path))
        assert "Figure 5" in output
        assert os.path.exists(tmp_path / "figure5.csv")
        assert os.path.exists(tmp_path / "figure6a.csv")

    def test_main_prints_output(self, capsys):
        exit_code = main(
            [
                "fissione",
                "--profile",
                "quick",
                "--peers",
                "80",
                "--queries",
                "5",
                "--objects",
                "100",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "FISSIONE" in captured.out

    def test_run_command_unknown_raises(self):
        with pytest.raises(ValueError):
            run_command("nonsense", self.TINY)

    def test_run_command_load(self, tmp_path):
        output = run_command(
            "load", self.TINY, csv_dir=str(tmp_path), rates=(2.0, 8.0), churn=False
        )
        assert "Concurrent load sweep" in output
        assert "Throughput vs offered load" in output
        assert os.path.exists(tmp_path / "load.csv")

    def test_run_command_load_with_churn(self):
        output = run_command("load", self.TINY, rates=(4.0,), churn=True)
        assert "with churn" in output
