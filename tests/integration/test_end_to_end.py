"""End-to-end integration tests across the whole stack.

These exercise the complete pipeline the examples use: build a network,
publish realistic datasets, run single- and multi-attribute queries, compare
against brute-force oracles, and check the paper's delay bounds -- including
under churn and with every baseline scheme on the same workload.
"""

from __future__ import annotations

import math

import pytest

from repro.core.armada import ArmadaSystem
from repro.core.topk import TopKExecutor
from repro.rangequery import (
    ArmadaScheme,
    DcfCanScheme,
    PhtScheme,
    ScrapScheme,
    SkipGraphScheme,
    SquidScheme,
)
from repro.rangequery.base import AttributeSpace
from repro.sim.rng import DeterministicRNG
from repro.workloads.datasets import generate_grid_resources, generate_student_scores
from repro.workloads.queries import RangeQueryWorkload
from repro.workloads.values import uniform_values, zipf_values


class TestScoreWorkflow:
    """The paper's "70 <= score <= 80" data-management workload."""

    @pytest.fixture(scope="class")
    def score_system(self):
        system = ArmadaSystem(num_peers=250, seed=101, attribute_interval=(0.0, 100.0))
        scores = generate_student_scores(DeterministicRNG(101).substream("scores"), 1500)
        for record in scores:
            system.insert(record.score, payload=record)
        return system, scores

    def test_score_band_query_is_exact(self, score_system):
        system, scores = score_system
        result = system.range_query(70.0, 80.0)
        expected = sorted(record.score for record in scores if 70.0 <= record.score <= 80.0)
        assert sorted(result.matching_values()) == expected
        assert all(70.0 <= stored.value.score <= 80.0 for stored in result.matches)

    def test_score_queries_are_delay_bounded(self, score_system):
        system, _scores = score_system
        bound = 2 * math.log2(system.size) + 1
        for low, high in ((0.0, 100.0), (95.0, 100.0), (49.9, 50.1)):
            assert system.range_query(low, high).delay_hops <= bound

    def test_skewed_data_still_exact(self):
        system = ArmadaSystem(num_peers=120, seed=103, attribute_interval=(0.0, 1000.0))
        values = zipf_values(DeterministicRNG(103).substream("zipf"), 2000, alpha=1.3)
        system.insert_many(values)
        result = system.range_query(0.0, 50.0)
        expected = sorted(v for v in values if v <= 50.0)
        assert sorted(result.matching_values()) == expected


class TestGridWorkflow:
    """The paper's grid-information-service multi-attribute workload."""

    @pytest.fixture(scope="class")
    def grid_system(self):
        intervals = ((0.0, 64.0), (0.0, 4000.0), (0.0, 5.0))
        system = ArmadaSystem(
            num_peers=200,
            seed=107,
            attribute_interval=(0.0, 4000.0),
            attribute_intervals=intervals,
        )
        machines = generate_grid_resources(DeterministicRNG(107).substream("grid"), 1000)
        for machine in machines:
            system.insert_multi(machine.as_tuple(), payload=machine)
        return system, machines

    def test_paper_example_query(self, grid_system):
        system, machines = grid_system
        # "1GB <= Memory <= 4GB and 50GB <= disk <= 200GB"
        ranges = [(1.0, 4.0), (50.0, 200.0), (0.0, 5.0)]
        result = system.multi_range_query(ranges)
        expected = sorted(
            machine.host
            for machine in machines
            if 1.0 <= machine.memory_gb <= 4.0 and 50.0 <= machine.disk_gb <= 200.0
        )
        assert sorted(stored.value.host for stored in result.matches) == expected

    def test_multi_attribute_delay_bound_for_any_selectivity(self, grid_system):
        system, _machines = grid_system
        bound = 2 * math.log2(system.size) + 1
        for ranges in (
            [(0.0, 64.0), (0.0, 4000.0), (0.0, 5.0)],
            [(32.0, 64.0), (1000.0, 4000.0), (3.5, 5.0)],
            [(0.0, 1.0), (0.0, 50.0), (0.0, 1.0)],
        ):
            assert system.multi_range_query(ranges).delay_hops <= bound


class TestChurnWorkflow:
    def test_queries_stay_exact_across_growth_and_shrink(self):
        system = ArmadaSystem(num_peers=100, seed=111, attribute_interval=(0.0, 1000.0))
        values = uniform_values(DeterministicRNG(111).substream("values"), 1500, 0.0, 1000.0)
        system.insert_many(values)

        def check():
            result = system.range_query(200.0, 420.0)
            expected = sorted(v for v in values if 200.0 <= v <= 420.0)
            assert sorted(result.matching_values()) == expected
            assert result.delay_hops <= 2 * math.log2(system.size) + 1

        check()
        system.add_peers(80)
        check()
        system.remove_peers(60)
        check()
        assert system.topology_report().healthy

    def test_topk_after_churn(self):
        system = ArmadaSystem(num_peers=80, seed=113, attribute_interval=(0.0, 1000.0))
        values = uniform_values(DeterministicRNG(113).substream("values"), 800, 0.0, 1000.0)
        system.insert_many(values)
        system.add_peers(20)
        result = TopKExecutor(system).top_k(7)
        assert result.values == sorted(values, reverse=True)[:7]


class TestCrossSchemeAgreement:
    """Every scheme must return the same answers on the same workload."""

    def test_all_schemes_agree_on_results(self):
        space = AttributeSpace(0.0, 1000.0)
        values = uniform_values(DeterministicRNG(117).substream("values"), 700, 0.0, 1000.0)
        workload = RangeQueryWorkload(range_size=60.0, count=5)
        queries = workload.as_list(DeterministicRNG(117).substream("queries"))

        schemes = [
            ArmadaScheme(space=space),
            DcfCanScheme(space=space),
            SkipGraphScheme(space=space),
            ScrapScheme(space=space),
            SquidScheme(space=space),
            PhtScheme(space=space, substrate="chord"),
        ]
        for scheme in schemes:
            scheme.build(150, seed=117)
            scheme.load(values)

        for low, high in queries:
            expected = sorted(v for v in values if low <= v <= high)
            for scheme in schemes:
                measurement = scheme.query(low, high)
                assert sorted(measurement.matches) == expected, scheme.name

    def test_armada_has_lowest_delay_on_large_ranges(self):
        space = AttributeSpace(0.0, 1000.0)
        values = uniform_values(DeterministicRNG(119).substream("values"), 700, 0.0, 1000.0)
        armada = ArmadaScheme(space=space)
        dcf = DcfCanScheme(space=space)
        for scheme in (armada, dcf):
            scheme.build(300, seed=119)
            scheme.load(values)
        rng = DeterministicRNG(119).substream("queries")
        armada_delay = 0
        dcf_delay = 0
        for _ in range(10):
            low = rng.uniform(0.0, 600.0)
            armada_delay += armada.query(low, low + 300.0).delay_hops
            dcf_delay += dcf.query(low, low + 300.0).delay_hops
        assert armada_delay < dcf_delay
