"""Integration tests for the experiment harness (quick configurations).

Each test runs the real experiment code on a small configuration and checks
the *shape* of the paper's result: who wins, what stays flat, what grows.
"""

from __future__ import annotations

import pytest

from repro.experiments import ablation, analytics, figures_netsize, figures_rangesize
from repro.experiments import fissione_props, mira, table1
from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return ExperimentConfig.quick()


@pytest.fixture(scope="module")
def rangesize_result(config):
    return figures_rangesize.run(config)


@pytest.fixture(scope="module")
def netsize_result(config):
    return figures_netsize.run(config.with_overrides(queries_per_point=20))


class TestFigure5and6(object):
    def test_pira_delay_flat_and_below_log_n(self, rangesize_result):
        delays = [row.avg_delay for row in rangesize_result.pira_rows]
        assert max(delays) - min(delays) < 2.5
        assert all(delay <= rangesize_result.log_n for delay in delays)

    def test_dcf_delay_grows_with_range_size(self, rangesize_result):
        dcf = [row.avg_delay for row in rangesize_result.dcf_rows]
        assert dcf[-1] > dcf[0]
        assert dcf[-1] > rangesize_result.log_n

    def test_pira_messages_track_destinations(self, rangesize_result):
        for row in rangesize_result.pira_rows:
            predicted = row.log_n + 2 * row.avg_destinations - 2
            assert row.avg_messages == pytest.approx(predicted, rel=0.35)

    def test_mesg_and_incre_ratio_near_two(self, rangesize_result):
        ratios = rangesize_result.ratio_series()
        # Skip the smallest range (Destpeers ~ 1 makes the ratios degenerate).
        assert all(1.2 <= value <= 3.0 for value in ratios["MesgRatio"][1:])
        assert all(value <= 2.6 for value in ratios["IncreRatio"][1:])

    def test_formatting_and_csv(self, rangesize_result):
        text = rangesize_result.format()
        assert "Figure 5" in text and "Figure 6" in text
        csvs = rangesize_result.to_csv()
        assert set(csvs) == {"figure5", "figure6a", "figure6b"}
        assert csvs["figure5"].splitlines()[0] == "range_size,PIRA,DCF-CAN,logN"


class TestFigure7and8(object):
    def test_pira_delay_below_log_n_at_every_size(self, netsize_result):
        for row in netsize_result.pira_rows:
            assert row.avg_delay <= row.log_n

    def test_dcf_delay_grows_faster_than_pira(self, netsize_result):
        pira = [row.avg_delay for row in netsize_result.pira_rows]
        dcf = [row.avg_delay for row in netsize_result.dcf_rows]
        assert dcf[-1] > pira[-1]
        # DCF grows with N^(1/2); PIRA only logarithmically.
        assert (dcf[-1] - dcf[0]) > (pira[-1] - pira[0])

    def test_csv_emission(self, netsize_result):
        csvs = netsize_result.to_csv()
        assert set(csvs) == {"figure7", "figure8a", "figure8b"}
        assert "network_size" in csvs["figure7"].splitlines()[0]


class TestTable1(object):
    @pytest.fixture(scope="class")
    def table(self, config):
        return table1.run(config.with_overrides(queries_per_point=25))

    def test_contains_all_schemes(self, table):
        names = {row.scheme for row in table.rows}
        assert names == {"Squid", "Skip Graph", "SCRAP", "DCF-CAN", "PHT", "Armada (PIRA)"}

    def test_only_armada_is_delay_bounded(self, table):
        for row in table.rows:
            assert row.delay_bounded == (row.scheme == "Armada (PIRA)")

    def test_armada_has_smallest_measured_delay(self, table):
        armada = table.row_for("Armada (PIRA)")
        for row in table.rows:
            if row.scheme != armada.scheme:
                assert armada.measured.avg_delay <= row.measured.avg_delay

    def test_armada_below_log_n_and_pht_above(self, table):
        armada = table.row_for("Armada (PIRA)")
        pht = table.row_for("PHT")
        assert armada.measured.avg_delay <= armada.measured.log_n
        assert pht.measured.avg_delay > pht.measured.log_n

    def test_format_renders_table(self, table):
        assert "Table 1" in table.format()


class TestAnalyticsExperiment(object):
    def test_all_claims_hold_on_quick_config(self, config):
        result = analytics.run(config.with_overrides(queries_per_point=25))
        assert result.points
        assert result.all_delay_bounded()
        # The "< logN" average-delay claim is asymptotic; at the very small
        # quick-config sizes it can be off by a fraction of a hop, so assert
        # it only for the larger networks of the sweep.
        assert all(
            point.average_below_log_n for point in result.points if point.network_size >= 400
        )
        assert result.worst_message_error() < 0.5
        assert "4.3.2" in result.format()


class TestFissionePropertiesExperiment(object):
    def test_bounds_hold_across_sizes(self, config):
        result = fissione_props.run(config, routing_samples=60)
        assert result.all_within_bounds()
        assert all(point.healthy for point in result.points)
        assert "FISSIONE" in result.format()


class TestMiraExperiment(object):
    def test_mira_points_bounded_and_complete(self, config):
        result = mira.run(
            config.with_overrides(peers=150, objects=400, queries_per_point=20),
            attribute_counts=(2,),
            box_sizes=(50.0, 300.0),
        )
        assert result.points
        assert result.all_delay_bounded()
        assert result.all_complete()
        assert "MIRA" in result.format()


class TestAblationExperiment(object):
    def test_pruning_saves_messages_without_losing_destinations(self, config):
        result = ablation.run(config.with_overrides(peers=300), queries_per_point=6)
        assert result.points
        for point in result.points:
            assert point.same_destinations
            assert point.unpruned_messages > point.pira_messages
        # For small ranges pruning must save a lot (the unpruned descent
        # floods essentially the whole network).
        assert result.points[0].message_savings > 3.0
        assert "Ablation" in result.format()
