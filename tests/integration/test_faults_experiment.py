"""Integration tests: the robustness-under-failure sweep and its CLI.

The acceptance property of the faults work: ``repro faults`` produces a
deterministic (seed-fixed) success-ratio/completeness curve persisted via
the ResultStore, byte-identical across runs and across worker counts.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.store import ResultStore, canonical_line
from repro.cli import build_parser, main
from repro.experiments.common import ExperimentConfig
from repro.experiments.faults import (
    DEFAULT_FRACTIONS,
    FaultSweepSpec,
    run_fault_job,
    run_sweep,
)


def tiny_config() -> ExperimentConfig:
    return ExperimentConfig.quick().with_overrides(
        peers=120, queries_per_point=10, objects=300
    )


def tiny_spec(**kwargs) -> FaultSweepSpec:
    kwargs.setdefault("schemes", ("pira", "pira-basic"))
    kwargs.setdefault("fractions", (0.0, 0.2))
    return FaultSweepSpec.from_config(tiny_config(), **kwargs)


class TestSpecValidation:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown fault scheme"):
            tiny_spec(schemes=("pira", "armada"))

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="failed fractions"):
            tiny_spec(fractions=(0.95,))
        with pytest.raises(ValueError, match="at least one failed fraction"):
            tiny_spec(fractions=())

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline must be positive"):
            tiny_spec(deadline=0.0)

    def test_default_fractions_are_papers_axis(self):
        spec = FaultSweepSpec.from_config(tiny_config())
        assert spec.fractions == DEFAULT_FRACTIONS

    def test_jobs_canonical_order_and_distinct_seeds(self):
        spec = tiny_spec(replicas=2)
        jobs = spec.jobs()
        assert [job.key() for job in jobs] == sorted(job.key() for job in jobs)
        assert len({job.seed for job in jobs}) == len(jobs)


class TestFaultSweep:
    def test_curve_shape_and_record_fields(self):
        outcome = run_sweep(tiny_spec())
        assert outcome.jobs == 4
        by_key = {(r["scheme"], r["failed_fraction"]): r for r in outcome.records}
        # Fault-free points retrieve everything.
        for scheme in ("pira", "pira-basic"):
            clean = by_key[(scheme, 0.0)]
            assert clean["success_ratio"] == 1.0
            assert clean["mean_completeness"] == 1.0
            assert clean["failed_peers"] == 0
            assert clean["stalled"] == 0
        # Failures degrade the basic protocol at least as much as the
        # resilient one, and the crash actually happened.
        faulty = by_key[("pira", 0.2)]
        basic = by_key[("pira-basic", 0.2)]
        assert faulty["failed_peers"] == int(0.2 * 120)
        assert faulty["success_ratio"] >= basic["success_ratio"]
        assert faulty["retries"] + faulty["reroutes"] > 0
        assert basic["retries"] == 0
        # Counts are ints, ratios floats (clean JSON).
        for key in ("queries", "succeeded", "failed_peers", "messages", "retries"):
            assert isinstance(faulty[key], int), key
        xs, series = outcome.curve("success_ratio")
        assert xs == [0.0, 0.2]
        assert set(series) == {"pira", "pira-basic"}
        assert "Robustness under failure" in outcome.format()

    def test_mira_variant_runs(self):
        outcome = run_sweep(tiny_spec(schemes=("mira",), fractions=(0.1,)))
        record = outcome.records[0]
        assert record["scheme"] == "mira"
        assert record["queries"] == 10
        assert record["stalled"] == 0

    def test_deterministic_across_runs(self):
        spec = tiny_spec()
        first = run_sweep(spec).records
        second = run_sweep(spec).records
        assert [canonical_line(r) for r in first] == [canonical_line(r) for r in second]

    def test_parallel_equals_serial(self, tmp_path):
        spec = tiny_spec(fractions=(0.0, 0.1))
        serial = run_sweep(spec, workers=1)
        store = ResultStore(os.fspath(tmp_path / "faults.jsonl"))
        parallel = run_sweep(spec, workers=2, store=store)
        assert parallel.records == serial.records
        assert store.load() == serial.records

    def test_single_job_rerun_matches_sweep_row(self):
        spec = tiny_spec(fractions=(0.2,), schemes=("pira",))
        outcome = run_sweep(spec)
        job = spec.jobs()[0]
        assert run_fault_job(job) == outcome.records[0]


class TestFaultsCli:
    def test_parser_accepts_faults_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["faults", "--scheme", "pira", "--failed-fraction", "0,0.05,0.1,0.2",
             "--timeout", "3", "--retries", "1", "--no-reroute", "--deadline", "80"]
        )
        assert args.command == "faults"
        assert args.scheme == "pira"
        assert args.failed_fraction == "0,0.05,0.1,0.2"
        assert args.no_reroute is True

    def test_bad_scheme_exits(self):
        with pytest.raises(SystemExit):
            main(["faults", "--profile", "quick", "--scheme", "nonesuch"])

    def test_bad_deadline_exits_cleanly(self):
        with pytest.raises(SystemExit, match="deadline must be positive"):
            main(["faults", "--profile", "quick", "--deadline", "0"])

    def test_cross_command_scheme_flags_rejected(self):
        """--scheme belongs to faults, --schemes to sweep; mixing them up
        errors instead of being silently ignored."""
        with pytest.raises(SystemExit, match="use --scheme for faults"):
            main(["faults", "--profile", "quick", "--schemes", "pira"])
        with pytest.raises(SystemExit, match="use --schemes for sweep"):
            main(["sweep", "--profile", "quick", "--scheme", "armada"])

    def test_cli_store_is_deterministic(self, tmp_path, capsys):
        """The acceptance criterion: the CLI curve is seed-fixed and the
        persisted store is byte-identical across runs."""
        argv = [
            "faults",
            "--profile", "quick",
            "--peers", "120",
            "--queries", "8",
            "--objects", "300",
            "--scheme", "pira",
            "--failed-fraction", "0,0.1,0.2",
        ]
        first_path = os.fspath(tmp_path / "first.jsonl")
        second_path = os.fspath(tmp_path / "second.jsonl")
        assert main(argv + ["--store", first_path]) == 0
        out = capsys.readouterr().out
        assert "Success ratio vs failed fraction" in out
        assert f"streamed 3 records into {first_path}" in out
        assert main(argv + ["--store", second_path]) == 0

        with open(first_path, "rb") as handle:
            first_bytes = handle.read()
        with open(second_path, "rb") as handle:
            second_bytes = handle.read()
        assert first_bytes == second_bytes
        records = ResultStore(first_path).load()
        assert [r["failed_fraction"] for r in records] == [0.0, 0.1, 0.2]
        assert records[0]["success_ratio"] == 1.0
