"""Integration tests: the gossip control plane on the live asyncio cluster.

Everything here runs real sockets on localhost: SWIM frames ride the v2
transport between peer-node processes, membership verdicts feed the
routing layer, and churn operations reshape the overlay while queries
keep flowing.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api.live import LiveSession
from repro.gossip import SwimConfig
from repro.runtime.cluster import LiveCluster
from repro.runtime.gateway import Gateway

FAST = SwimConfig(
    interval=0.05, ping_timeout=0.05, indirect_timeout=0.08, suspicion_timeout=0.3
)


async def wait_converged(cluster, expect_dead=(), timeout=10.0) -> bool:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if cluster.membership_converged(expect_dead):
            return True
        await asyncio.sleep(0.05)
    return False


def gossip_cluster(**overrides) -> LiveCluster:
    options = dict(num_peers=8, num_nodes=4, seed=3, gossip=True, gossip_config=FAST)
    options.update(overrides)
    return LiveCluster(**options)


class TestFailureDetection:
    def test_crash_is_detected_and_route_withdrawn(self):
        async def scenario():
            cluster = gossip_cluster()
            await cluster.start()
            try:
                assert await wait_converged(cluster)
                victim = sorted(cluster.network.peer_ids())[0]
                cluster.crash_peer(victim)  # no unregister: gossip must do it
                assert await wait_converged(cluster, expect_dead={victim})
                assert cluster.transport.address_of(victim) is None
                counts = cluster.membership_counts()
                assert counts["dead"] == 1
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_restart_rejoins_and_restores_the_route(self):
        async def scenario():
            cluster = gossip_cluster()
            await cluster.start()
            try:
                assert await wait_converged(cluster)
                victim = sorted(cluster.network.peer_ids())[3]
                cluster.crash_peer(victim)
                assert await wait_converged(cluster, expect_dead={victim})
                cluster.restart_peer(victim)
                assert await wait_converged(cluster)
                assert cluster.transport.address_of(victim) is not None
                assert cluster.membership_counts()["alive"] == cluster.network.size
            finally:
                await cluster.stop()

        asyncio.run(scenario())


class TestLiveChurn:
    def test_join_then_leave_keeps_views_and_routes_consistent(self):
        async def scenario():
            cluster = gossip_cluster()
            await cluster.start()
            try:
                assert await wait_converged(cluster)
                before = cluster.network.size
                assigned = await cluster.join_peer()
                assert cluster.network.size == before + 1
                assert await wait_converged(cluster)
                assert cluster.membership_counts()["alive"] == cluster.network.size
                assert cluster.transport.address_of(assigned) is not None

                leaver = sorted(cluster.network.peer_ids())[-1]
                merged = await cluster.leave_peer(leaver)
                assert merged  # the parent zone some sibling absorbed
                assert cluster.network.size == before
                assert await wait_converged(cluster)
                assert cluster.membership_counts()["alive"] == cluster.network.size
                for peer_id in cluster.network.peer_ids():
                    assert cluster.transport.address_of(peer_id) is not None
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_queries_survive_a_leave(self):
        async def scenario():
            cluster = gossip_cluster()
            await cluster.start()
            gateway = await Gateway(cluster, deadline=5.0).start()
            try:
                session = await LiveSession.connect(*gateway.address, pool=2)
                try:
                    for value in range(0, 200, 5):
                        await session.insert(float(value))
                    leaver = sorted(cluster.network.peer_ids())[-1]
                    await cluster.leave_peer(leaver)
                    assert await wait_converged(cluster)
                    reply = await session.range(0.0, 1000.0, retries=2)
                    values = sorted(match.key for match in reply.result.matches)
                    # The leaver's slice was handed to the inheriting
                    # sibling before departure: nothing is lost.
                    assert values == [float(value) for value in range(0, 200, 5)]
                finally:
                    await session.close()
            finally:
                await gateway.shutdown(drain=True)
                await cluster.stop()

        asyncio.run(scenario())


class TestGatewayFailover:
    def test_session_outlives_its_first_gateway(self):
        async def scenario():
            cluster = gossip_cluster()
            await cluster.start()
            first = await Gateway(cluster, deadline=5.0).start()
            second = await Gateway(cluster, deadline=5.0).start()
            try:
                session = await LiveSession.connect(*first.address, pool=2)
                try:
                    await session.insert(42.0)
                    # stats() piggybacks the advertised gateway list off the
                    # cluster's membership plane into the session.
                    await session.stats()
                    assert tuple(second.address) in {
                        tuple(address) for address in session.known_gateways
                    }
                    await first.shutdown(drain=True)
                    # The retry budget is what lets _pick_connection prune
                    # the dead pool and redial a learned gateway.
                    reply = await session.range(0.0, 1000.0, retries=2)
                    assert 42.0 in [match.key for match in reply.result.matches]
                finally:
                    await session.close()
            finally:
                await second.shutdown(drain=True)
                await cluster.stop()

        asyncio.run(scenario())

    def test_session_fails_cleanly_with_no_gateway_left(self):
        async def scenario():
            cluster = gossip_cluster()
            await cluster.start()
            gateway = await Gateway(cluster, deadline=5.0).start()
            try:
                session = await LiveSession.connect(*gateway.address, pool=1)
                try:
                    await session.insert(1.0)
                    await gateway.shutdown(drain=True)
                    with pytest.raises(ConnectionError):
                        await session.range(0.0, 10.0)
                finally:
                    await session.close()
            finally:
                await cluster.stop()

        asyncio.run(scenario())


class TestLiveFaultsExperiment:
    def test_small_run_detects_and_serves(self):
        from repro.experiments.livefaults import LiveFaultsSpec, run_async

        spec = LiveFaultsSpec(
            peers=8,
            nodes=4,
            queries=60,
            objects=100,
            fraction=0.25,
            concurrency=8,
            gossip_config=FAST,
        )
        result = asyncio.run(run_async(spec))
        assert result.converged, "membership never converged on the kills"
        assert len(result.killed) == 2
        assert result.success_ratio >= 0.8
        assert result.report.queries == spec.queries
        metrics = result.bench_metrics()
        assert metrics["converged"] == 1.0
        assert metrics["gossip_frames"] > 0
