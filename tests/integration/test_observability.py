"""Integration tests for the observability layer on the live runtime.

Covers the v2 ``tracing`` capability negotiation (grant, deny, v1
fallback), end-to-end traced queries through a real gateway, the
v1/v2 stats-payload parity contract, the Prometheus exposition
endpoint, and the sim-vs-live hop-count equality the tracing plane
makes checkable.
"""

from __future__ import annotations

import asyncio

from repro.api.live import LiveSession
from repro.api.requests import RangeQuery, RequestOptions
from repro.api.sim import SimSession
from repro.core.armada import ArmadaSystem
from repro.obs.exposition import MetricsServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer, trace_from_wire
from repro.runtime.client import RuntimeClient
from repro.runtime.cluster import LiveCluster
from repro.runtime.gateway import Gateway
from repro.runtime.protocol import encode_frame, hello_frame, read_frame
from repro.runtime.server import build_observability
from repro.sim.rng import DeterministicRNG
from repro.workloads.values import uniform_values

SEED = 7
INTERVALS = ((0.0, 1000.0), (0.0, 1000.0))
LOW, HIGH = 200.0, 320.0


async def boot(num_peers: int = 8, observed: bool = True):
    """A live cluster + gateway; ``observed`` attaches tracer and metrics."""
    cluster = LiveCluster(num_peers=num_peers, seed=SEED, attribute_intervals=INTERVALS)
    await cluster.start()
    if observed:
        tracer, registry = build_observability(cluster)
    else:
        tracer = registry = None
    gateway = await Gateway(cluster, tracer=tracer, metrics=registry).start()
    return cluster, gateway, registry


async def teardown(cluster, gateway):
    await gateway.shutdown()
    await cluster.stop()


async def seed_objects(session, count: int = 100):
    from repro.api.requests import Insert

    values = uniform_values(
        DeterministicRNG(SEED).substream("values"), count, 0.0, 1000.0
    )
    await session.batch([Insert(value=value) for value in values])


class TestTracingNegotiation:
    def test_granted_when_gateway_has_a_tracer(self):
        async def scenario():
            cluster, gateway, _ = await boot()
            try:
                session = await LiveSession.connect(*gateway.address, tracing=True)
                try:
                    assert session.tracing_granted
                finally:
                    await session.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_denied_when_gateway_has_no_tracer(self):
        async def scenario():
            cluster, gateway, _ = await boot(observed=False)
            try:
                session = await LiveSession.connect(*gateway.address, tracing=True)
                try:
                    assert not session.tracing_granted
                    reply = await session.submit(
                        RangeQuery(
                            low=LOW, high=HIGH, options=RequestOptions(trace=True)
                        )
                    )
                    assert reply.status == "ok"
                    assert reply.trace_id is None
                finally:
                    await session.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_welcome_omits_tracing_unless_requested(self):
        async def scenario():
            cluster, gateway, _ = await boot()
            try:
                reader, writer = await asyncio.open_connection(*gateway.address)
                writer.write(encode_frame(hello_frame()))
                await writer.drain()
                welcome = await read_frame(reader)
                assert "tracing" not in welcome
                writer.close()
                await writer.wait_closed()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_v1_fallback_drops_trace_context_cleanly(self):
        async def scenario():
            cluster, gateway, _ = await boot()
            try:
                session = await LiveSession.connect(
                    *gateway.address, version=1, tracing=True
                )
                try:
                    assert not session.tracing_granted
                    reply = await session.submit(
                        RangeQuery(
                            low=LOW, high=HIGH, options=RequestOptions(trace=True)
                        )
                    )
                    assert reply.status == "ok"
                    assert reply.trace_id is None
                    assert reply.trace == ()
                finally:
                    await session.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())


class TestTracedQueries:
    def test_traced_reply_ships_the_span_tree(self):
        async def scenario():
            cluster, gateway, _ = await boot()
            try:
                session = await LiveSession.connect(*gateway.address, tracing=True)
                try:
                    await seed_objects(session)
                    chunks = []
                    reply = await session.submit(
                        RangeQuery(
                            low=LOW, high=HIGH, options=RequestOptions(trace=True)
                        ),
                        on_chunk=chunks.append,
                    )
                    assert reply.status == "ok"
                    assert reply.trace_id is not None
                    trace = trace_from_wire(reply.trace)
                    assert trace.trace_id == reply.trace_id
                    assert trace.done
                    hop_spans = [
                        s for s in trace.spans if s.name.startswith("hop ")
                    ]
                    assert len(hop_spans) == reply.result.messages
                    assert all(
                        chunk.trace_id == reply.trace_id for chunk in chunks
                    )
                finally:
                    await session.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_untraced_request_on_tracing_connection_stays_untraced(self):
        async def scenario():
            cluster, gateway, _ = await boot()
            try:
                session = await LiveSession.connect(*gateway.address, tracing=True)
                try:
                    reply = await session.submit(RangeQuery(low=LOW, high=HIGH))
                    assert reply.trace_id is None
                    assert reply.trace == ()
                finally:
                    await session.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_binary_encoding_carries_the_trace_fields(self):
        async def scenario():
            cluster, gateway, _ = await boot()
            try:
                session = await LiveSession.connect(
                    *gateway.address, encoding="binary", tracing=True
                )
                try:
                    await seed_objects(session)
                    reply = await session.submit(
                        RangeQuery(
                            low=LOW, high=HIGH, options=RequestOptions(trace=True)
                        )
                    )
                    assert reply.status == "ok"
                    assert reply.trace_id is not None
                    assert trace_from_wire(reply.trace).done
                finally:
                    await session.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())


class TestStatsParity:
    def test_v1_and_v2_stats_share_one_payload(self):
        async def scenario():
            cluster, gateway, _ = await boot()
            try:
                v2 = await LiveSession.connect(*gateway.address, tracing=True)
                v1 = await RuntimeClient.connect(*gateway.address)
                try:
                    v2_stats = await v2.stats()
                    v1_stats = await v1.stats()
                    assert set(v1_stats) == set(v2_stats)
                    assert v1_stats["tracing"] is True
                    assert "active_encodings" in v1_stats
                    assert set(v1_stats["active_encodings"]) == {"json", "binary"}
                    # one raw v1 line client + one pooled v2 session connected
                    assert v2_stats["active_encodings"]["json"] >= 1
                finally:
                    await v1.close()
                    await v2.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_tracing_false_without_tracer_in_both_protocols(self):
        async def scenario():
            cluster, gateway, _ = await boot(observed=False)
            try:
                v2 = await LiveSession.connect(*gateway.address)
                v1 = await RuntimeClient.connect(*gateway.address)
                try:
                    assert (await v2.stats())["tracing"] is False
                    assert (await v1.stats())["tracing"] is False
                finally:
                    await v1.close()
                    await v2.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())


async def http_get(host: str, port: int, path: str = "/metrics"):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.decode(), body.decode()


class TestMetricsEndpoint:
    def test_prometheus_text_has_the_core_series(self):
        async def scenario():
            cluster, gateway, registry = await boot()
            server = await MetricsServer(registry, port=0).start()
            try:
                session = await LiveSession.connect(*gateway.address)
                try:
                    await seed_objects(session)
                    for _ in range(3):
                        await session.submit(RangeQuery(low=LOW, high=HIGH))
                finally:
                    await session.close()
                head, body = await http_get(server.host, server.port)
                assert "200" in head.splitlines()[0]
                assert "text/plain; version=0.0.4" in head
                assert "# TYPE repro_gateway_frames_total counter" in body
                assert 'repro_gateway_queries_total{kind="pira"} 3' in body
                assert "repro_gateway_query_latency_seconds_count 3" in body
                assert 'repro_gateway_query_latency_seconds_bucket{le="+Inf"} 3' in body
                assert "repro_gateway_query_hops_count 3" in body
                assert "repro_gateway_in_flight 0" in body
                assert "repro_query_retries_total 0" in body
                assert "repro_cluster_peers 8" in body
            finally:
                await server.stop()
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_unknown_path_is_404(self):
        async def scenario():
            registry = MetricsRegistry()
            server = await MetricsServer(registry, port=0).start()
            try:
                head, _ = await http_get(server.host, server.port, "/nope")
                assert "404" in head.splitlines()[0]
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestSoakObservability:
    def test_soak_snapshots_metrics_and_writes_perfetto_trace(self, tmp_path):
        import json

        from repro.experiments.soak import SoakSpec, run

        trace_path = tmp_path / "soak_trace.json"
        result = run(
            SoakSpec(
                peers=8,
                nodes=2,
                queries=20,
                concurrency=4,
                objects=50,
                metrics_port=0,
                trace_out=str(trace_path),
            )
        )
        obs = result.stats["obs"]
        assert obs["repro_gateway_frames_total{json}"] > 0
        assert obs["repro_gateway_query_latency_seconds_count"] == 20.0
        bench = result.bench_metrics()
        assert bench["frames_json"] > 0
        assert bench["frames_binary"] == 0
        info = result.stats["trace_out"]
        assert info["traces"] == 20
        payload = json.loads(trace_path.read_text())
        assert len(payload["traceEvents"]) == info["spans"]
        assert all(event["ph"] in ("X", "i") for event in payload["traceEvents"])


class TestSimLiveParity:
    def test_hop_counts_match_the_sim_for_the_same_seed(self):
        """The acceptance check: a traced live query resolves in exactly
        the hop count the simulator predicts for the same seed, because
        both run the identical executor over the identical Kautz overlay."""

        async def scenario():
            values = list(
                uniform_values(
                    DeterministicRNG(SEED).substream("parity"), 200, 0.0, 1000.0
                )
            )

            sim_system = ArmadaSystem(
                num_peers=8, seed=SEED, attribute_intervals=INTERVALS
            )
            sim_system.insert_many(values)
            origin = sim_system.network.peer_ids()[0]
            sim_session = SimSession(sim_system, tracer=Tracer())
            sim_reply = await sim_session.submit(
                RangeQuery(
                    low=LOW,
                    high=HIGH,
                    options=RequestOptions(origin=origin, trace=True),
                )
            )

            cluster, gateway, _ = await boot()
            try:
                live_session = await LiveSession.connect(
                    *gateway.address, tracing=True
                )
                try:
                    from repro.api.requests import Insert

                    await live_session.batch(
                        [Insert(value=value) for value in values]
                    )
                    live_reply = await live_session.submit(
                        RangeQuery(
                            low=LOW,
                            high=HIGH,
                            options=RequestOptions(origin=origin, trace=True),
                        )
                    )
                finally:
                    await live_session.close()
            finally:
                await teardown(cluster, gateway)

            assert live_reply.result.delay_hops == sim_reply.result.delay_hops
            assert sorted(live_reply.result.destinations.items()) == sorted(
                sim_reply.result.destinations.items()
            )
            sim_hops = [
                s
                for s in trace_from_wire(sim_reply.trace).spans
                if s.name.startswith("hop ")
            ]
            live_hops = [
                s
                for s in trace_from_wire(live_reply.trace).spans
                if s.name.startswith("hop ")
            ]
            assert len(sim_hops) == len(live_hops)
            assert {s.attributes["receiver"] for s in sim_hops} == {
                s.attributes["receiver"] for s in live_hops
            }

        asyncio.run(scenario())
