"""Protocol v2 edge cases: handshake, framing errors, multiplexing.

The satellite contract of the API-redesign PR: every malformed input gets
a *structured* error frame — the gateway must never close a v2 connection
silently — and rid-tagged replies must re-associate correctly no matter
how requests interleave.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api.live import LiveSession
from repro.api.requests import ApiError
from repro.runtime.client import RuntimeClient
from repro.runtime.cluster import LiveCluster
from repro.runtime.gateway import Gateway
from repro.runtime.protocol import (
    ENCODING_BINARY,
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    encode_frame_binary,
    hello_frame,
    read_frame,
)

SEED = 7
INTERVALS = ((0.0, 1000.0), (0.0, 1000.0))


async def boot(num_peers: int = 8):
    cluster = LiveCluster(num_peers=num_peers, seed=SEED, attribute_intervals=INTERVALS)
    await cluster.start()
    gateway = await Gateway(cluster).start()
    return cluster, gateway


async def teardown(cluster, gateway):
    await gateway.shutdown()
    await cluster.stop()


async def raw_v2(gateway, versions=(2,), encoding="json"):
    """A raw handshaken v2 connection (reader, writer)."""
    reader, writer = await asyncio.open_connection(*gateway.address)
    writer.write(encode_frame(hello_frame(versions=versions, encoding=encoding)))
    await writer.drain()
    return reader, writer


class TestHandshake:
    def test_welcome(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway)
                welcome = await read_frame(reader)
                assert welcome["type"] == "welcome"
                assert welcome["version"] == 2
                assert "batch" in welcome["features"]
                assert "stream" in welcome["features"]
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_version_mismatch_gets_structured_error_not_silence(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway, versions=(99,))
                error = await read_frame(reader)
                assert error["type"] == "error"
                assert error["fatal"] is True
                assert "unsupported protocol versions [99]" in error["error"]
                assert "[1, 2]" in error["error"]  # tells the client what works
                assert await read_frame(reader) is None  # then the close
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_non_hello_first_frame_gets_structured_error(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await asyncio.open_connection(*gateway.address)
                writer.write(encode_frame({"type": "request", "rid": 1}))
                await writer.drain()
                error = await read_frame(reader)
                assert error["type"] == "error"
                assert error["fatal"] is True
                assert "hello" in error["error"]
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_client_session_surfaces_handshake_rejection(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                # A session pinned to an impossible version list would be a
                # client bug; the point is the error is a readable ApiError.
                reader, writer = await raw_v2(gateway, versions=(3,))
                error = await read_frame(reader)
                assert error["type"] == "error"
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())


class TestFrameErrors:
    def test_unknown_frame_type_errors_but_connection_survives(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway)
                await read_frame(reader)  # welcome
                writer.write(encode_frame({"type": "mystery", "rid": 7}))
                writer.write(
                    encode_frame(
                        {"type": "request", "rid": 8, "request": {"op": "ping"}}
                    )
                )
                await writer.drain()
                error = await read_frame(reader)
                assert error["type"] == "error"
                assert error["rid"] == 7
                assert "unknown frame type 'mystery'" in error["error"]
                reply = await read_frame(reader)  # the ping still answers
                assert reply["type"] == "reply"
                assert reply["rid"] == 8
                assert reply["payload"]["type"] == "pong"
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_missing_rid_errors(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway)
                await read_frame(reader)
                writer.write(encode_frame({"type": "request", "request": {"op": "ping"}}))
                await writer.drain()
                error = await read_frame(reader)
                assert error["type"] == "error"
                assert "integer 'rid'" in error["error"]
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_duplicate_rid_in_batch_errors_while_original_answers(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway)
                await read_frame(reader)
                query = {"op": "range", "low": 100.0, "high": 400.0}
                writer.write(
                    encode_frame(
                        {
                            "type": "batch",
                            "requests": [
                                {"rid": 5, "request": query},
                                {"rid": 5, "request": query},
                            ],
                        }
                    )
                )
                await writer.drain()
                frames = [await read_frame(reader), await read_frame(reader)]
                kinds = sorted(frame["type"] for frame in frames)
                assert kinds == ["error", "reply"]
                error = next(frame for frame in frames if frame["type"] == "error")
                # NOT rid-tagged: rid 5 still belongs to the original
                # request, and a rid-tagged error would tell a conforming
                # client to fail that request's future and discard its
                # (perfectly good) reply when it lands.
                assert "rid" not in error
                assert "duplicate request id 5" in error["error"]
                reply = next(frame for frame in frames if frame["type"] == "reply")
                assert reply["rid"] == 5
                assert reply["payload"]["ok"] is True
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_rid_reusable_after_completion(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway)
                await read_frame(reader)
                for _ in range(2):  # same rid, sequentially: fine
                    writer.write(
                        encode_frame(
                            {"type": "request", "rid": 1, "request": {"op": "ping"}}
                        )
                    )
                    await writer.drain()
                    reply = await read_frame(reader)
                    assert reply["type"] == "reply" and reply["rid"] == 1
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_oversized_frame_gets_fatal_error_then_close(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway)
                await read_frame(reader)  # welcome
                # A length prefix beyond the cap: unframeable, unrecoverable.
                writer.write((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
                await writer.drain()
                error = await read_frame(reader)
                assert error["type"] == "error"
                assert error["fatal"] is True
                assert "exceeds" in error["error"]
                assert await read_frame(reader) is None  # close follows
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_malformed_request_object_errors_with_rid(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway)
                await read_frame(reader)
                writer.write(
                    encode_frame(
                        {"type": "request", "rid": 3, "request": {"op": "range", "low": "x"}}
                    )
                )
                await writer.drain()
                error = await read_frame(reader)
                assert error["type"] == "error"
                assert error["rid"] == 3
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())


class TestEncodingNegotiation:
    """Satellite of the binary-hot-path PR: the ``encoding`` handshake key
    and the per-connection rules it creates."""

    def test_welcome_defaults_to_json_for_old_clients(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway)
                welcome = await read_frame(reader)
                assert welcome["type"] == "welcome"
                assert welcome["encoding"] == "json"
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_binary_negotiation_round_trip(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway, encoding=ENCODING_BINARY)
                welcome = await read_frame(reader)  # control frames stay JSON
                assert welcome["type"] == "welcome"
                assert welcome["encoding"] == "binary"
                writer.write(
                    encode_frame_binary(
                        {"type": "request", "rid": 1, "request": {"op": "ping"}}
                    )
                )
                await writer.drain()
                # Peek the raw reply body: it must be a binary frame.
                prefix = await reader.readexactly(4)
                body = await reader.readexactly(int.from_bytes(prefix, "big"))
                assert body[0] == 0xC1
                from repro.runtime.binframe import decode_binary

                reply = decode_binary(body)
                assert reply["type"] == "reply"
                assert reply["rid"] == 1
                assert reply["payload"]["type"] == "pong"
                # And the gateway's stats report the negotiation.
                reader2, writer2 = await raw_v2(gateway)
                await read_frame(reader2)
                writer2.write(
                    encode_frame(
                        {"type": "request", "rid": 1, "request": {"op": "stats"}}
                    )
                )
                await writer2.drain()
                stats = (await read_frame(reader2))["payload"]["stats"]
                assert stats["binary_connections"] >= 1
                assert stats["active_encodings"]["binary"] >= 1
                assert stats["active_encodings"]["json"] >= 1
                writer.close()
                writer2.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_unknown_encoding_gets_fatal_structured_error(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway, encoding="zstd")
                error = await read_frame(reader)
                assert error["type"] == "error"
                assert error["fatal"] is True
                assert "zstd" in error["error"]
                # tells the client what would have worked
                assert "json" in error["error"] and "binary" in error["error"]
                assert await read_frame(reader) is None  # then the close
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_binary_frame_on_json_connection_errors_but_survives(self):
        """Length framing is intact, so an unexpected binary body is
        recoverable: structured error, then the connection keeps working."""

        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway)  # negotiated JSON
                await read_frame(reader)  # welcome
                writer.write(
                    encode_frame_binary(
                        {"type": "request", "rid": 9, "request": {"op": "ping"}}
                    )
                )
                writer.write(
                    encode_frame(
                        {"type": "request", "rid": 10, "request": {"op": "ping"}}
                    )
                )
                await writer.drain()
                error = await read_frame(reader)
                assert error["type"] == "error"
                assert error.get("fatal") is not True
                assert "binary" in error["error"]
                reply = await read_frame(reader)  # the JSON ping still answers
                assert reply["type"] == "reply"
                assert reply["rid"] == 10
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_oversized_binary_frame_fatal_like_oversized_json(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await raw_v2(gateway, encoding=ENCODING_BINARY)
                await read_frame(reader)  # welcome
                writer.write((MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"\xc1")
                await writer.drain()
                error = await read_frame(reader)
                assert error["type"] == "error"
                assert error["fatal"] is True
                assert "exceeds" in error["error"]
                assert await read_frame(reader) is None
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_client_side_oversized_binary_encode_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame_binary({"type": "reply", "rid": 1, "blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_mixed_encoding_clients_pipeline_on_one_gateway(self):
        """One JSON session and one binary session, interleaved requests —
        every reply re-associates on the right connection with identical
        results (the encoding changes bytes, never semantics)."""

        async def scenario():
            cluster, gateway = await boot()
            try:
                json_session = await LiveSession.connect(*gateway.address, pool=2)
                bin_session = await LiveSession.connect(
                    *gateway.address, pool=2, encoding=ENCODING_BINARY
                )
                assert bin_session.encoding == ENCODING_BINARY
                await json_session.insert(123.0)
                origin = sorted(cluster.network.peer_ids())[0]
                json_replies, bin_replies = await asyncio.gather(
                    asyncio.gather(
                        *(json_session.range(0.0, 500.0, origin=origin) for _ in range(6))
                    ),
                    asyncio.gather(
                        *(bin_session.range(0.0, 500.0, origin=origin) for _ in range(6))
                    ),
                )
                for json_reply, bin_reply in zip(json_replies, bin_replies):
                    assert json_reply.result.matching_values() == [123.0]
                    assert (
                        bin_reply.result.matching_values()
                        == json_reply.result.matching_values()
                    )
                    assert bin_reply.result.messages == json_reply.result.messages
                stats = await json_session.stats()
                assert stats["active_encodings"] == {"json": 2, "binary": 2}
                await json_session.close()
                await bin_session.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())


class TestV1Fallback:
    def test_v1_lines_still_work_on_the_same_port(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                client = await RuntimeClient.connect(*gateway.address)
                assert await client.ping()
                await client.insert(500.0)
                reply = await client.range(0.0, 1000.0)
                assert reply.result.matching_values() == [500.0]
                stats = await client.stats()
                assert stats["v1_connections"] >= 1
                await client.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())

    def test_v1_error_replies_stay_json_lines(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                reader, writer = await asyncio.open_connection(*gateway.address)
                writer.write(b"range 1\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["ok"] is False
                assert "usage: range" in reply["error"]
                writer.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())


class TestRuntimeClientErrors:
    """Satellite: the v1 client surfaces clear errors, never silent hangs."""

    async def _serve_once(self, payload: bytes):
        """A fake gateway that answers any line with ``payload`` then closes."""

        async def handler(reader, writer):
            await reader.readline()
            writer.write(payload)
            await writer.drain()
            writer.close()

        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        return server, server.sockets[0].getsockname()[1]

    def test_unparseable_reply_line_raises_protocol_error(self):
        async def scenario():
            server, port = await self._serve_once(b"this is not json\n")
            try:
                client = await RuntimeClient.connect("127.0.0.1", port)
                with pytest.raises(ProtocolError, match="unparseable gateway reply"):
                    await client.ping()
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_connection_dropped_mid_reply_raises_connection_error(self):
        async def scenario():
            server, port = await self._serve_once(b'{"ok": true, "type"')  # no newline
            try:
                client = await RuntimeClient.connect("127.0.0.1", port)
                with pytest.raises(ConnectionError, match="mid-reply"):
                    await client.ping()
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_closed_before_reply_raises_connection_error(self):
        async def scenario():
            server, port = await self._serve_once(b"")
            try:
                client = await RuntimeClient.connect("127.0.0.1", port)
                with pytest.raises(ConnectionError, match="before replying"):
                    await client.ping()
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_v1_session_times_out_instead_of_hanging(self):
        """A wedged gateway (accepts, never replies) must bound the v1
        path by the session timeout, and the FIFO-poisoned connection must
        not be reused."""

        async def scenario():
            async def handler(reader, writer):
                await reader.readline()  # swallow the command, reply never

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                session = await LiveSession.connect(
                    "127.0.0.1", port, pool=1, version=1, timeout=0.2
                )
                poisoned = session._v1_clients[0]
                with pytest.raises(asyncio.TimeoutError):
                    await session.ping()
                # the timed-out connection was retired and replaced
                assert poisoned not in session._v1_clients
                assert session.pool_size == 1
                await session.close()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_v2_close_fails_in_flight_requests_promptly(self):
        """Closing a session must fail pending futures immediately, not
        leave them to sit out the full reply timeout."""

        async def scenario():
            async def v2_handler(reader, writer):
                frame = await read_frame(reader)
                assert frame["type"] == "hello"
                from repro.runtime.protocol import encode_frame, welcome_frame

                writer.write(encode_frame(welcome_frame()))
                await writer.drain()
                while await read_frame(reader) is not None:
                    pass  # swallow every request silently

            server = await asyncio.start_server(v2_handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                session = await LiveSession.connect("127.0.0.1", port, pool=1, timeout=30.0)
                submission = asyncio.get_running_loop().create_task(
                    session.ping()
                )
                await asyncio.sleep(0.05)  # let the request frame go out
                await session.close()
                with pytest.raises((ConnectionError, ApiError)):
                    # well under the 30s reply timeout: the close itself
                    # must resolve the pending future
                    await asyncio.wait_for(submission, timeout=2.0)
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_overlapping_callers_serialise_instead_of_interleaving(self):
        async def scenario():
            cluster, gateway = await boot()
            try:
                client = await RuntimeClient.connect(*gateway.address)
                await client.insert(500.0)
                replies = await asyncio.gather(
                    *(client.range(0.0, 1000.0) for _ in range(8))
                )
                assert all(reply.result.matching_values() == [500.0] for reply in replies)
                await client.close()
            finally:
                await teardown(cluster, gateway)

        asyncio.run(scenario())
