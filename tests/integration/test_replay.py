"""Integration: record a live soak, replay it in the sim, detect tampering.

The flight recorder's core promise is the live≡sim equivalence turned
into a checked runtime property: a recorded live run must re-execute in
the simulator with **zero divergences**, and any edit to the recording
must be caught at the exact sequence number of the edited event.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.experiments import postmortem
from repro.experiments.soak import SoakSpec, run_async
from repro.obs.recorder import load_dump, write_dump
from repro.obs.replay import replay_events


def record_soak(tmp_path, **overrides):
    """Run one small recorded soak; returns (SoakResult, dump events)."""
    params = dict(
        peers=8,
        nodes=2,
        queries=30,
        objects=40,
        concurrency=4,
        seed=11,
        record_dir=str(tmp_path),
    )
    params.update(overrides)
    spec = SoakSpec(**params)
    result = asyncio.run(run_async(spec))
    events = load_dump(str(tmp_path / "flight.dump"))
    return result, events


def replayable(events):
    """Strip the synthetic trailer, as the CLI does before replaying."""
    return [ev for ev in events if ev.get("type") != "dump"]


class TestCleanReplay:
    def test_recorded_live_soak_replays_with_zero_divergences(self, tmp_path):
        result, events = record_soak(tmp_path)
        assert result.report.success_ratio == 1.0
        report = replay_events(replayable(events))
        assert report.ok, report.divergence.format()
        assert report.queries == 30
        # Every live reply was re-derived and compared field by field.
        assert report.replies_checked == 30
        assert report.undelivered == 0
        assert report.unapplied == 0
        # Replay traces every query, even ones never traced live.
        assert len(report.traces) == 30
        assert report.meta["peers"] == 8
        assert result.stats["postmortem"]["reason"] == "soak-end"

    def test_mira_queries_replay_too(self, tmp_path):
        _, events = record_soak(tmp_path, mira_fraction=1.0)
        report = replay_events(replayable(events))
        assert report.ok, report.divergence.format()
        assert report.replies_checked == 30


class TestTamperDetection:
    def test_edited_field_diverges_at_exactly_that_seq(self, tmp_path):
        _, events = record_soak(tmp_path)
        target = next(
            ev
            for ev in events
            if ev["type"] == "deliver" and ev["frame"].get("hop", 0) >= 2
        )
        target["frame"]["hop"] = 41
        report = replay_events(replayable(events))
        assert not report.ok
        assert report.divergence.seq == target["seq"]
        assert report.divergence.event_type == "deliver"
        assert "hop" in report.divergence.details

    def test_deleted_delivery_diverges_at_the_dependent_event(self, tmp_path):
        _, events = record_soak(tmp_path)
        victim = next(ev for ev in events if ev["type"] == "deliver")
        qid = victim["frame"]["query_id"]
        kind = victim["frame"]["kind"]
        pruned = [ev for ev in events if ev is not victim]
        report = replay_events(replayable(pruned))
        assert not report.ok
        # The missing delivery surfaces at the first event that needed it:
        # a later delivery of a child send, or the query's recorded reply.
        assert report.divergence.event_type in ("deliver", "reply")
        assert report.divergence.details.get("query_id", qid) == qid or kind

    def test_tamper_survives_a_dump_rewrite(self, tmp_path):
        """Same detection when the edit goes through dump files on disk —
        the workflow a human debugging a dump actually uses."""
        _, events = record_soak(tmp_path)
        target = next(ev for ev in events if ev["type"] == "deliver")
        target["frame"]["receiver"] = "999"
        edited = tmp_path / "edited.dump"
        write_dump(events, str(edited))
        result = postmortem.run(postmortem.PostmortemSpec(dumps=(str(edited),)))
        assert not result.ok
        assert result.report.divergence.seq == target["seq"]
        assert "DIVERGED" in result.format()


class TestPostmortemCommand:
    def test_kill_peer_failure_writes_dump_that_replays_clean(self, tmp_path):
        result, events = record_soak(
            tmp_path, queries=40, postmortem_on_fail=True, kill_peer=True
        )
        # The forced failure: the victim's subtree is genuinely lost.
        assert result.report.success_ratio < 1.0
        assert result.stats["kill_peer"]
        assert result.stats["postmortem"]["reason"] == "postmortem"
        # A lossy run still replays divergence-free: the recorded drops and
        # fault events reproduce the same partial results.
        report = replay_events(replayable(events))
        assert report.ok, report.divergence.format()
        assert report.faults >= 1

    def test_postmortem_on_fail_keeps_healthy_runs_dump_free(self, tmp_path):
        spec = SoakSpec(
            peers=8,
            nodes=2,
            queries=10,
            objects=20,
            concurrency=2,
            seed=11,
            record_dir=str(tmp_path),
            postmortem_on_fail=True,
        )
        result = asyncio.run(run_async(spec))
        assert result.report.success_ratio == 1.0
        assert "postmortem" not in result.stats
        assert not (tmp_path / "flight.dump").exists()

    def test_postmortem_merges_overlapping_dumps(self, tmp_path):
        _, events = record_soak(tmp_path)
        stream = replayable(events)
        half = len(stream) // 2
        # Two overlapping windows of the same recording, one trailer each.
        write_dump(stream[: half + 10] + [events[-1]], str(tmp_path / "a.dump"))
        write_dump(stream[half - 10 :] + [events[-1]], str(tmp_path / "b.dump"))
        result = postmortem.run(
            postmortem.PostmortemSpec(
                dumps=(str(tmp_path / "a.dump"), str(tmp_path / "b.dump"))
            )
        )
        assert result.ok
        assert result.report.replies_checked == 30

    def test_format_includes_timeline_when_asked(self, tmp_path):
        _, events = record_soak(tmp_path)
        result = postmortem.run(
            postmortem.PostmortemSpec(
                dumps=(str(tmp_path / "flight.dump"),), timeline=True
            )
        )
        text = result.format()
        assert "no divergence" in text
        assert "timeline:" in text
        assert "query" in text

    def test_spec_needs_at_least_one_dump(self):
        with pytest.raises(ValueError):
            postmortem.PostmortemSpec(dumps=())
