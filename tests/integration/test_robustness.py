"""Robustness and determinism integration tests.

The simulator is deterministic by construction (seeded RNG streams, ordered
event processing); these tests pin that down, and use the overlay's fault
injection hook to check that message loss degrades results in the expected
way (queries lose destinations but never crash or return wrong extras).
"""

from __future__ import annotations

import pytest

from repro.core.armada import ArmadaSystem
from repro.experiments import figures_rangesize
from repro.experiments.common import ExperimentConfig
from repro.sim.rng import DeterministicRNG
from repro.workloads.values import uniform_values


class TestDeterminism:
    def test_same_seed_same_query_measurements(self):
        def run_once():
            system = ArmadaSystem(num_peers=150, seed=77, attribute_interval=(0.0, 1000.0))
            values = uniform_values(DeterministicRNG(77).substream("values"), 900, 0.0, 1000.0)
            system.insert_many(values)
            outcomes = []
            for low in (10.0, 200.0, 480.0, 730.0):
                result = system.range_query(low, low + 50.0, origin=system.network.peer_ids()[0])
                outcomes.append(
                    (result.delay_hops, result.messages, result.destination_count,
                     tuple(sorted(result.matching_values())))
                )
            return outcomes

        assert run_once() == run_once()

    def test_experiment_rows_are_reproducible(self):
        config = ExperimentConfig(
            peers=120,
            queries_per_point=10,
            objects=200,
            range_sizes=(10, 100),
            network_sizes=(60,),
        )
        first = figures_rangesize.run(config)
        second = figures_rangesize.run(config)
        assert [row.as_dict() for row in first.pira_rows] == [
            row.as_dict() for row in second.pira_rows
        ]
        assert [row.as_dict() for row in first.dcf_rows] == [
            row.as_dict() for row in second.dcf_rows
        ]


class TestFaultInjection:
    @pytest.fixture()
    def lossy_system(self):
        system = ArmadaSystem(num_peers=120, seed=88, attribute_interval=(0.0, 1000.0))
        values = uniform_values(DeterministicRNG(88).substream("values"), 800, 0.0, 1000.0)
        system.insert_many(values)
        return system, values

    def test_dropping_all_query_messages_isolates_the_origin(self, lossy_system):
        system, _values = lossy_system
        system.overlay.set_drop_filter(lambda message: message.kind == "pira")
        result = system.range_query(100.0, 300.0)
        # Only destinations reachable with zero messages (the origin itself)
        # can be found; nothing breaks.
        assert result.destination_count <= 1
        system.overlay.set_drop_filter(None)

    def test_partial_loss_returns_subset_never_garbage(self, lossy_system):
        system, values = lossy_system
        full = system.range_query(100.0, 300.0)
        counter = {"count": 0}

        def drop_every_third(message):
            counter["count"] += 1
            return counter["count"] % 3 == 0

        system.overlay.set_drop_filter(drop_every_third)
        degraded = system.range_query(100.0, 300.0)
        system.overlay.set_drop_filter(None)

        expected = {v for v in values if 100.0 <= v <= 300.0}
        assert set(degraded.matching_values()) <= expected
        assert set(degraded.destinations) <= set(full.destinations)
        assert degraded.destination_count <= full.destination_count

    def test_recovery_after_loss_stops(self, lossy_system):
        system, values = lossy_system
        system.overlay.set_drop_filter(lambda message: True)
        system.range_query(100.0, 300.0)
        system.overlay.set_drop_filter(None)
        result = system.range_query(100.0, 300.0)
        expected = sorted(v for v in values if 100.0 <= v <= 300.0)
        assert sorted(result.matching_values()) == expected
