"""Integration tests: the live asyncio cluster vs the simulator.

The acceptance bar of the live-runtime PR: an N=32 live cluster must
answer the same query set with result sets **identical** to the simulator
built from the same seed — destinations, matches, message counts and hop
delays — because both drive the same resumable executors over the same
(deterministically bootstrapped) topology.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api.live import LiveSession
from repro.core.armada import ArmadaSystem
from repro.engine.reporting import QueryJob
from repro.runtime.client import GatewayError, RuntimeClient
from repro.runtime.cluster import ClusterError, LiveCluster
from repro.runtime.gateway import Gateway
from repro.runtime.loadgen import make_mixed_jobs, run_closed_loop, run_open_loop
from repro.sim.rng import DeterministicRNG

SEED = 7
INTERVALS = ((0.0, 1000.0), (0.0, 1000.0))
VALUES = [float(v) for v in range(0, 1000, 25)]
MULTI_VALUES = [(float(v), float(1000 - v)) for v in range(0, 1000, 100)]


def build_reference(num_peers: int) -> ArmadaSystem:
    system = ArmadaSystem(num_peers=num_peers, seed=SEED, attribute_intervals=INTERVALS)
    system.insert_many(VALUES)
    for pair in MULTI_VALUES:
        system.insert_multi(pair)
    return system


async def boot_cluster(num_peers: int, **kwargs):
    cluster = LiveCluster(
        num_peers=num_peers, seed=SEED, attribute_intervals=INTERVALS, **kwargs
    )
    await cluster.start()
    gateway = await Gateway(cluster).start()
    client = await RuntimeClient.connect(*gateway.address)
    for value in VALUES:
        await client.insert(value)
    for pair in MULTI_VALUES:
        await client.insert_multi(pair)
    return cluster, gateway, client


class TestSimLiveEquivalence:
    @pytest.mark.parametrize("encoding", ["json", "binary"])
    def test_n32_identical_results(self, encoding):
        """Same seed, same queries → byte-equal result sets, sim vs live —
        over both negotiated frame encodings (the binary bodies change
        bytes on the wire, never the deterministic query semantics)."""
        system = build_reference(32)

        async def scenario():
            cluster, gateway, client = await boot_cluster(32)
            session = await LiveSession.connect(
                *gateway.address, pool=2, encoding=encoding
            )
            try:
                assert sorted(cluster.network.peer_ids()) == sorted(
                    system.network.peer_ids()
                ), "bootstrap must replay the simulator's topology"

                rng = DeterministicRNG(1234)
                origins = sorted(cluster.network.peer_ids())
                checked = 0
                for index, origin in enumerate(origins):
                    low = rng.uniform(0.0, 800.0)
                    high = low + rng.uniform(1.0, 150.0)
                    sim = system.range_query(low, high, origin=origin)
                    live = (await session.range(low, high, origin=origin)).result
                    assert live.destinations == sim.destinations
                    assert sorted(live.matching_values()) == sorted(sim.matching_values())
                    assert live.messages == sim.messages
                    assert live.delay_hops == sim.delay_hops
                    assert live.complete and sim.complete
                    checked += 1

                    if index % 4 == 0:  # interleave MIRA boxes
                        box = ((low, high), (100.0, 900.0))
                        sim_m = system.multi_range_query(box, origin=origin)
                        live_m = (await session.multi_range(box, origin=origin)).result
                        assert live_m.destinations == sim_m.destinations
                        assert sorted(live_m.matching_values()) == sorted(
                            sim_m.matching_values()
                        )
                        assert live_m.messages == sim_m.messages
                        assert live_m.delay_hops == sim_m.delay_hops
                assert checked == 32
            finally:
                await session.close()
                await client.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())

    def test_messages_really_cross_sockets(self):
        """The equivalence is honest: forwarding frames traverse TCP."""

        async def scenario():
            cluster, gateway, client = await boot_cluster(16, num_nodes=4)
            try:
                reply = await client.range(100.0, 400.0)
                assert reply.result.messages > 0
                frames = sum(node.frames_received for node in cluster.nodes)
                # every forwarding message plus every store request arrived
                # through some node's server socket
                assert frames >= reply.result.messages
                assert cluster.transport.messages_sent >= reply.result.messages
            finally:
                await client.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())


class TestGatewaySmoke:
    def test_8_peers_50_mixed_queries_all_succeed(self):
        """The CI smoke contract: 8 peers, ~50 mixed queries, 100% success."""

        async def scenario():
            cluster, gateway, client = await boot_cluster(8, num_nodes=8)
            try:
                jobs = make_mixed_jobs(
                    seed=SEED,
                    count=50,
                    peer_ids=cluster.network.peer_ids(),
                    mira_fraction=0.3,
                )
                session = await LiveSession.connect(*gateway.address, pool=2)
                try:
                    report = await run_closed_loop(session, jobs, concurrency=8)
                finally:
                    await session.close()
                assert report.queries == 50
                assert report.succeeded == 50
                assert report.success_ratio == 1.0
                assert report.stalled == 0
                assert report.latency_percentiles["p99"] > 0.0
                stats = await client.stats()
                assert stats["peers"] == 8
                assert stats["queries_served"] >= 50
                # protocol v2 multiplexing really happened: more requests
                # were concurrently in flight than pooled connections
                assert stats["peak_in_flight"] > 2
                assert stats["protocol_versions"] == [1, 2]
                assert stats["v2_connections"] >= 2
            finally:
                await client.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())

    def test_open_loop_load(self):
        async def scenario():
            cluster, gateway, client = await boot_cluster(8)
            try:
                jobs = make_mixed_jobs(
                    seed=3, count=20, peer_ids=cluster.network.peer_ids(), rate=100.0
                )
                session = await LiveSession.connect(*gateway.address, pool=4)
                try:
                    report = await run_open_loop(session, jobs, time_scale=0.001)
                finally:
                    await session.close()
                assert report.queries == 20
                assert report.succeeded == 20
            finally:
                await client.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())

    def test_gateway_error_replies(self):
        async def scenario():
            cluster, gateway, client = await boot_cluster(8)
            try:
                with pytest.raises(GatewayError, match="usage: range"):
                    await client._command("range 1")
                with pytest.raises(GatewayError, match="unknown command"):
                    await client._command("frobnicate")
                with pytest.raises(GatewayError, match="unknown origin"):
                    await client.range(1.0, 2.0, origin="nonexistent")
                with pytest.raises(GatewayError, match="exceeds"):
                    await client.range(10.0, 1.0)
                # the connection survives every error reply
                assert await client.ping()
            finally:
                await client.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())

    def test_cluster_validation(self):
        with pytest.raises(ClusterError):
            LiveCluster(num_peers=2)
        with pytest.raises(ClusterError):
            LiveCluster(num_peers=8, num_nodes=0)

    def test_job_helper_against_reference_peers(self):
        """make_mixed_jobs is origin-deterministic across peer-list sources."""
        system = build_reference(16)

        async def scenario():
            cluster, gateway, client = await boot_cluster(16)
            try:
                sim_jobs = make_mixed_jobs(
                    seed=5, count=30, peer_ids=system.network.peer_ids(), mira_fraction=0.5
                )
                live_jobs = make_mixed_jobs(
                    seed=5, count=30, peer_ids=cluster.network.peer_ids(), mira_fraction=0.5
                )
                assert sim_jobs == live_jobs
                assert any(job.kind == "mira" for job in live_jobs)
                assert any(job.kind == "pira" for job in live_jobs)
            finally:
                await client.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())
