"""Graceful-shutdown audit: draining in-flight queries before closing.

The contract of ``repro serve`` (and :meth:`Gateway.shutdown`):

1. a query that is *in flight* when shutdown begins completes normally —
   bounded by the per-query deadline, never abandoned;
2. queries arriving after shutdown began are refused with a usable error;
3. the process-level SIGINT path drains and exits 0.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys

import pytest

from repro.runtime.client import GatewayError, RuntimeClient
from repro.runtime.cluster import LiveCluster
from repro.runtime.gateway import Gateway
from repro.runtime.server import ServeSettings, serve_async


async def boot(extra_transit: float = 0.0, deadline: float = 5.0):
    cluster = LiveCluster(num_peers=8, seed=3, extra_transit=extra_transit)
    await cluster.start()
    gateway = await Gateway(cluster, deadline=deadline).start()
    return cluster, gateway


class TestGatewayDrain:
    def test_inflight_query_completes_during_shutdown(self):
        """The drain waits for the in-flight query; the client gets its
        full result, not a reset connection."""

        async def scenario():
            # 150ms of artificial transit keeps the query genuinely in
            # flight (frames scheduled but not yet delivered) at shutdown.
            cluster, gateway = await boot(extra_transit=0.15)
            client = await RuntimeClient.connect(*gateway.address)
            await client.insert(500.0)

            pending = asyncio.create_task(client.range(0.0, 1000.0))
            await asyncio.sleep(0.05)
            assert gateway.in_flight == 1

            drained = await gateway.shutdown(drain=True)
            assert drained == 1
            reply = await pending
            assert reply.status == "ok"
            assert reply.result.complete
            assert reply.result.destination_count == cluster.network.size
            assert 500.0 in reply.result.matching_values()

            await client.close()
            await cluster.stop()

        asyncio.run(scenario())

    def test_shutdown_with_idle_connected_client(self):
        """Since Python 3.12.1, ``Server.wait_closed()`` blocks until every
        client connection closes — an idle client must therefore never be
        able to stall the drain (regression: the gateway once awaited
        ``wait_closed`` before draining and hung forever on 3.12/3.13)."""

        async def scenario():
            cluster, gateway = await boot()
            idle = await RuntimeClient.connect(*gateway.address)
            try:
                await asyncio.wait_for(gateway.shutdown(drain=True), timeout=10.0)
            finally:
                await idle.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_new_queries_refused_while_draining(self):
        async def scenario():
            cluster, gateway = await boot(extra_transit=0.15)
            client = await RuntimeClient.connect(*gateway.address)
            pending = asyncio.create_task(client.range(0.0, 1000.0))
            await asyncio.sleep(0.05)

            shutdown = asyncio.create_task(gateway.shutdown(drain=True))
            await asyncio.sleep(0.01)
            # New work is refused while the drain runs: either the listener
            # is already closed (connect fails) or an accepted command gets
            # the parseable "shutting down" error.
            with pytest.raises((GatewayError, ConnectionError, OSError)):
                probe = await RuntimeClient.connect(*gateway.address)
                try:
                    await probe.range(1.0, 2.0)
                finally:
                    await probe.close()

            await shutdown
            assert (await pending).status == "ok"
            await client.close()
            await cluster.stop()

        asyncio.run(scenario())

    def test_deadline_bounds_the_drain(self):
        """A query that cannot finish (its route was severed mid-flight) is
        force-completed as failed by its deadline, so the drain returns in
        bounded time instead of hanging."""

        async def scenario():
            cluster, gateway = await boot(extra_transit=0.1, deadline=0.4)
            client = await RuntimeClient.connect(*gateway.address)

            pending = asyncio.create_task(client.range(0.0, 1000.0))
            await asyncio.sleep(0.02)
            # Sever every route: in-flight frames can still be enqueued but
            # re-sends/new hops have nowhere to go; the executor cannot
            # complete the full tree.
            for peer_id in list(cluster.transport.node_ids()):
                cluster.transport.unregister(peer_id)

            started = asyncio.get_running_loop().time()
            await gateway.shutdown(drain=True)
            elapsed = asyncio.get_running_loop().time() - started
            assert elapsed < 5.0, "drain must be bounded by the deadline, not hang"

            reply = await pending
            assert reply.status in ("deadline", "partial")
            await client.close()
            await cluster.stop()

        asyncio.run(scenario())


class TestServeRunner:
    def test_programmatic_stop_drains(self, capsys):
        async def scenario():
            stop = asyncio.Event()
            settings = ServeSettings(peers=8, port=0, deadline=2.0)
            served_task = asyncio.create_task(serve_async(settings, stop_event=stop))
            # wait for the listening line
            for _ in range(200):
                await asyncio.sleep(0.01)
                if "listening" in capsys.readouterr().out:
                    break
            stop.set()
            served = await served_task
            assert served == 0

        asyncio.run(scenario())

    def test_sigint_drains_and_exits_zero(self, tmp_path):
        """The full process contract: serve, query, SIGINT, clean exit."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--peers", "6", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "gateway listening on" in banner
            host_port = banner.split("listening on ")[1].split()[0]
            host, port = host_port.rsplit(":", 1)

            import json as json_module
            import socket

            with socket.create_connection((host, int(port)), timeout=10) as sock:
                handle = sock.makefile("rw")
                handle.write("range 100 300\n")
                handle.flush()
                reply = json_module.loads(handle.readline())
                assert reply["ok"] is True

            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "draining" in out
        assert "drained; served 1 queries, sockets closed" in out
