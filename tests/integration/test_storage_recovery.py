"""Integration tests: crash consistency of the durable storage stack.

Three layers of the same promise — *an acknowledged write survives
``kill -9``* — each tested at the level where it is actually enforced:

* **process**: a :mod:`repro.runtime.storenode` subprocess is killed with
  ``SIGKILL`` mid-stream and restarted on the same log; every ``put``
  that was acknowledged before the kill must be served after replay, and
  the replay itself must never error on whatever torn tail the kill left;
* **cluster**: a live WAL-backed cluster takes acknowledged inserts
  through the gateway, hard-kills one peer and restarts it; the peer's
  content-addressed digest must be intact and the cluster must equal a
  same-seed simulator peer for peer;
* **replication**: ``replicas=2`` inserts stay readable through the
  ``get`` failover path after the owner crashes, and writes that cannot
  reach every replica are *reported* failed — never silently dropped.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys

import pytest

from repro.api.live import LiveSession
from repro.api.requests import ApiError
from repro.api.sim import SimSession
from repro.core.armada import ArmadaSystem
from repro.runtime.cluster import ClusterError, LiveCluster
from repro.runtime.gateway import Gateway

SEED = 7
INTERVALS = ((0.0, 1000.0), (0.0, 1000.0))
VALUES = [float(v) for v in range(0, 1000, 40)]

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))


# --------------------------------------------------------------------------- #
# storenode: a real process, a real SIGKILL                                    #
# --------------------------------------------------------------------------- #


def launch_storenode(path: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.runtime.storenode", "--path", path],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    hello = json.loads(proc.stdout.readline())
    return proc, hello


async def storenode_rpc(port: int, **frame):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = json.dumps({"rid": 1, **frame}).encode("utf-8")
        writer.write(len(body).to_bytes(4, "big") + body)
        await writer.drain()
        length = int.from_bytes(await reader.readexactly(4), "big")
        return json.loads(await reader.readexactly(length))
    finally:
        writer.close()


class TestStoreNodeSigkill:
    def test_acked_writes_survive_sigkill(self, tmp_path):
        path = str(tmp_path / "peer.wal")

        async def scenario():
            proc, hello = launch_storenode(path)
            try:
                assert hello["replayed"] == 0
                digest = None
                for index in range(12):
                    reply = await storenode_rpc(
                        hello["port"], op="put", object_id=f"obj{index:02d}",
                        key=float(index), value=float(index) * 10,
                    )
                    assert reply["ok"] and reply["synced"]
                digest = (await storenode_rpc(hello["port"], op="digest"))["digest"]
            finally:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=10)

            proc, hello = launch_storenode(path)
            try:
                assert hello["replayed"] == 12  # zero acked writes lost
                assert (await storenode_rpc(hello["port"], op="digest"))["digest"] == digest
                reply = await storenode_rpc(hello["port"], op="get", object_id="obj07")
                assert reply["objects"] == [[7.0, 70.0]]
            finally:
                await storenode_rpc(hello["port"], op="quit")
                proc.wait(timeout=10)

        asyncio.run(scenario())

    def test_sigkill_midstream_keeps_every_acked_write(self, tmp_path):
        """Kill while writes are still in flight: the acked prefix is the
        contract — later writes may be torn, but replay must not error and
        must serve every write whose ack the client actually read."""
        path = str(tmp_path / "peer.wal")

        async def scenario():
            proc, hello = launch_storenode(path)
            reader, writer = await asyncio.open_connection("127.0.0.1", hello["port"])
            acked = 0
            try:
                # Fire a burst without awaiting acks, then read acks until
                # a threshold and kill the process with replies (and
                # possibly disk writes) still outstanding.
                for index in range(40):
                    body = json.dumps(
                        {"rid": index, "op": "put", "object_id": f"obj{index:02d}",
                         "key": float(index), "value": float(index)}
                    ).encode("utf-8")
                    writer.write(len(body).to_bytes(4, "big") + body)
                await writer.drain()
                while acked < 15:
                    length = int.from_bytes(await reader.readexactly(4), "big")
                    reply = json.loads(await reader.readexactly(length))
                    assert reply["ok"]
                    acked += 1
            finally:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=10)
                writer.close()

            proc, hello = launch_storenode(path)
            try:
                assert hello["replayed"] >= acked  # never fewer than acked
                for index in range(acked):
                    reply = await storenode_rpc(
                        hello["port"], op="get", object_id=f"obj{index:02d}"
                    )
                    assert reply["objects"] == [[float(index), float(index)]], (
                        f"acked write obj{index:02d} was lost"
                    )
            finally:
                await storenode_rpc(hello["port"], op="quit")
                proc.wait(timeout=10)

        asyncio.run(scenario())


# --------------------------------------------------------------------------- #
# live cluster: kill-restart one peer, compare against the simulator           #
# --------------------------------------------------------------------------- #


class TestClusterKillRestart:
    @pytest.mark.parametrize("storage", ["wal", "sqlite"])
    def test_restarted_peer_serves_every_acked_write(self, storage, tmp_path):
        async def scenario():
            cluster = LiveCluster(
                num_peers=12, seed=SEED, attribute_intervals=INTERVALS,
                storage=storage,
                data_dir=str(tmp_path / "logs"),  # created on demand
            )
            await cluster.start()
            gateway = await Gateway(cluster).start()
            session = await LiveSession.connect(*gateway.address, pool=2)
            try:
                for value in VALUES:
                    reply = await session.insert(value)
                    assert reply.object_id  # acked == durable on the owner

                # every peer must survive kill -9, not a lucky one
                for victim in cluster.network.peer_ids():
                    peer = cluster.network.peer(victim)
                    objects = peer.object_count()
                    digest = peer.backend.digest()
                    cluster.crash_peer(victim)
                    assert peer.object_count() == 0
                    cluster.restart_peer(victim)
                    assert peer.object_count() == objects
                    assert peer.backend.digest() == digest

                # the fault-free sim built from the same seed agrees
                system = ArmadaSystem(
                    num_peers=12, seed=SEED, attribute_intervals=INTERVALS
                )
                for value in VALUES:
                    system.insert(value, payload=float(value))
                assert sorted(system.network.peer_ids()) == sorted(
                    cluster.network.peer_ids()
                )
                for peer_id in system.network.peer_ids():
                    assert (
                        cluster.network.peer(peer_id).backend.digest()
                        == system.network.peer(peer_id).backend.digest()
                    ), f"live peer {peer_id} diverged from the simulator"
            finally:
                await session.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())

    def test_non_memory_backend_requires_data_dir(self):
        with pytest.raises(ClusterError, match="data_dir"):
            LiveCluster(num_peers=8, seed=SEED, storage="wal")
        with pytest.raises(ClusterError, match="unknown storage backend"):
            LiveCluster(num_peers=8, seed=SEED, storage="floppy", data_dir="/tmp")


# --------------------------------------------------------------------------- #
# replication: acked means k copies, reads fail over, failures are reported    #
# --------------------------------------------------------------------------- #


class TestReplication:
    def test_acked_keys_survive_owner_crash(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(
                num_peers=12, seed=SEED, attribute_intervals=INTERVALS,
                storage="wal", data_dir=str(tmp_path),
            )
            await cluster.start()
            gateway = await Gateway(cluster).start()
            session = await LiveSession.connect(*gateway.address, pool=2)
            try:
                placements = {}
                for value in VALUES:
                    reply = await session.insert(value, replicas=2)
                    assert len(reply.replicas) == 2  # acked == 2 durable copies
                    placements[value] = reply.replicas

                victim = cluster.network.peer_ids()[0]
                cluster.crash_peer(victim)

                for value in VALUES:
                    reply = await session.get(value)
                    assert reply.found, f"acked write {value} unreadable after crash"
                    assert reply.values == (float(value),)
                    assert reply.peer != victim
                    if placements[value][0] == victim:
                        # served from the sibling's replica copy
                        assert reply.peer in placements[value][1:]
            finally:
                await session.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())

    def test_write_to_down_replica_is_reported_failed(self, tmp_path):
        """A write that cannot reach every replica raises — the client sees
        the failure (and how many copies made it), never a silent drop."""
        async def scenario():
            cluster = LiveCluster(
                num_peers=12, seed=SEED, attribute_intervals=INTERVALS,
                storage="wal", data_dir=str(tmp_path),
            )
            await cluster.start()
            gateway = await Gateway(cluster).start()
            session = await LiveSession.connect(*gateway.address, pool=2)
            try:
                victim = cluster.network.peer_ids()[0]
                cluster.crash_peer(victim)
                hit, ok = 0, 0
                for value in VALUES:
                    object_id = cluster.single_namer.name(value)
                    if victim in cluster.network.replica_peers(object_id, 2):
                        hit += 1
                        with pytest.raises(ApiError, match="down"):
                            await session.insert(value, replicas=2)
                        # the failed write is not readable as a ghost
                        assert not (await session.get(value)).found
                    else:
                        ok += 1
                        reply = await session.insert(value, replicas=2)
                        assert len(reply.replicas) == 2
                assert hit > 0 and ok > 0  # both paths actually exercised
            finally:
                await session.close()
                await gateway.shutdown()
                await cluster.stop()

        asyncio.run(scenario())

    def test_sim_session_matches_live_semantics(self):
        """The sim binding honours the same replica ack rule and failover
        read — with the fault injector supplying the crash."""
        from repro.faults import CrashStop, FaultPlan

        async def scenario():
            system = ArmadaSystem(num_peers=12, seed=SEED, attribute_intervals=INTERVALS)
            session = SimSession(system)
            placements = {}
            for value in VALUES:
                reply = await session.insert(value, replicas=2)
                assert len(reply.replicas) == 2
                placements[value] = reply.replicas

            victim = system.network.peer_ids()[0]
            FaultPlan([CrashStop(peer_ids=[victim])], seed=1).install(system.overlay)
            system.overlay.run(until=0.0)

            for value in VALUES:
                reply = await session.get(value)
                assert reply.found
                assert reply.values == (float(value),)
                assert reply.peer != victim

        asyncio.run(scenario())
