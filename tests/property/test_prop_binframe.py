"""Property tests: binary frame bodies are JSON-equivalent, bit for bit.

Satellite of the binary-hot-path PR.  The negotiated binary encoding
(:mod:`repro.runtime.binframe`) promises *exactly* the JSON value space:
for every encodable value ``x``,

    ``decode_binary(encode_binary(x)) == json.loads(json.dumps(x))``

— tuples collapse to lists, unicode survives, arbitrary-precision ints
round-trip, dict insertion order is preserved.  If that identity ever
breaks, a binary client and a JSON client would disagree about the same
reply, so Hypothesis hammers it with structurally arbitrary values, with
every v2 frame shape (``request``/``reply``/``chunk``/``batch``), and
through the tuple-tagging :mod:`repro.wire` layer the chunk values ride.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.binframe import decode_binary, encode_binary
from repro.runtime.protocol import decode_frame, encode_frame, encode_frame_binary
from repro.wire import decode_value, encode_value

# -- strategies --------------------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
#: covers fixint, int64, and the bigint ext path
any_ints = st.one_of(
    st.integers(min_value=-200, max_value=200),
    st.integers(min_value=-(2**63) - 10, max_value=2**63 + 10),
    st.integers(min_value=-(2**200), max_value=2**200),
)
#: unicode, including astral-plane codepoints and strings beyond fixstr
texts = st.text(max_size=40)

json_values = st.recursive(
    st.one_of(st.none(), st.booleans(), any_ints, finite_floats, texts),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)

rids = st.integers(min_value=1, max_value=2**62)

request_frames = st.fixed_dictionaries(
    {
        "type": st.just("request"),
        "rid": rids,
        "request": st.fixed_dictionaries(
            {
                "op": st.sampled_from(["range", "mrange", "insert", "ping", "stats"]),
                "low": finite_floats,
                "high": finite_floats,
                "options": st.dictionaries(st.text(max_size=6), json_values, max_size=3),
            }
        ),
    }
)

reply_frames = st.fixed_dictionaries(
    {
        "type": st.just("reply"),
        "rid": rids,
        "payload": st.fixed_dictionaries(
            {
                "ok": st.booleans(),
                "result": json_values,
                "status": st.sampled_from(["ok", "partial", "deadline"]),
            }
        ),
    }
)

chunk_frames = st.fixed_dictionaries(
    {
        "type": st.just("chunk"),
        "rid": rids,
        "peer": st.text(alphabet="012", min_size=1, max_size=8),
        "hop": st.integers(min_value=0, max_value=64),
        "values": st.lists(json_values, max_size=4),
    }
)

batch_frames = st.fixed_dictionaries(
    {
        "type": st.just("batch"),
        "requests": st.lists(
            st.fixed_dictionaries({"rid": rids, "request": json_values}), max_size=4
        ),
    }
)

v2_frames = st.one_of(request_frames, reply_frames, chunk_frames, batch_frames)

#: values as the chunk path ships them: tuples allowed, tagged by wire.py
tuple_values = st.recursive(
    st.one_of(st.none(), st.booleans(), any_ints, finite_floats, texts),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.tuples(children, children),
        st.dictionaries(
            st.text(max_size=6).filter(lambda k: k != "__tuple__"), children, max_size=3
        ),
    ),
    max_leaves=10,
)


# -- the JSON-identity contract ----------------------------------------------


@settings(max_examples=200, deadline=None)
@given(json_values)
def test_binary_round_trip_equals_a_json_round_trip(value):
    assert decode_binary(encode_binary(value)) == json.loads(json.dumps(value))


@settings(max_examples=200, deadline=None)
@given(v2_frames)
def test_every_v2_frame_type_is_encoding_agnostic(frame):
    """A frame read back from binary equals the same frame read from JSON."""
    via_binary = decode_frame(encode_frame_binary(frame)[4:], allow_binary=True)
    via_json = decode_frame(encode_frame(frame)[4:])
    assert via_binary == via_json


@settings(max_examples=150, deadline=None)
@given(tuple_values)
def test_tuple_tagging_survives_the_binary_body(value):
    """Chunk values go through wire.py's tuple tagging before the frame
    codec; the tuples must come back as tuples over *both* encodings."""
    tagged = encode_value(value)
    assert decode_value(decode_binary(encode_binary(tagged))) == decode_value(
        json.loads(json.dumps(tagged))
    )


@settings(max_examples=100, deadline=None)
@given(json_values)
def test_binary_bodies_are_self_identifying(value):
    """Every binary body opens with 0xC1; no JSON body can (it starts
    with ``{`` for frames) — the byte that makes per-frame sniffing safe."""
    assert encode_binary(value)[0] == 0xC1
