"""Equivalence property: concurrent execution changes timing, never results.

Query forwarding is deterministic given the topology and independent of the
simulation clock, so N queries run as overlapping in-flight work through the
:class:`~repro.engine.QueryEngine` must produce byte-identical per-query
measurements (destinations with hop counts, message count, delay) to the
same N queries run sequentially to completion on an identically-seeded
system.  This is the invariant that makes the engine's latency/throughput
numbers trustworthy: load changes *when* things happen, not *what* happens.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.armada import ArmadaSystem
from repro.engine import QueryEngine, QueryJob
from repro.sim.rng import DeterministicRNG
from repro.workloads.arrivals import poisson_arrival_times


def build_system(seed: int, num_peers: int = 200) -> ArmadaSystem:
    system = ArmadaSystem(
        num_peers=num_peers,
        seed=seed,
        attribute_interval=(0.0, 1000.0),
        attribute_intervals=((0.0, 1000.0), (0.0, 1000.0)),
    )
    system.insert_many([float(value) for value in range(0, 1000, 5)])
    rng = DeterministicRNG(seed).substream("multi-values")
    for _ in range(200):
        record = (rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
        system.insert_multi(record, payload=record)
    return system


def make_mixed_jobs(system: ArmadaSystem, count: int, rate: float, seed: int):
    """``count`` mixed PIRA/MIRA jobs with Poisson arrivals and fixed origins."""
    rng = DeterministicRNG(seed)
    arrivals = poisson_arrival_times(rng.substream("arrivals"), rate, count)
    pick = rng.substream("jobs")
    jobs = []
    for index, arrival in enumerate(arrivals):
        origin = system.network.random_peer(pick).peer_id
        low = pick.uniform(0.0, 850.0)
        if index % 3 == 2:
            jobs.append(
                QueryJob(
                    arrival=arrival,
                    origin=origin,
                    ranges=((low, low + 120.0), (pick.uniform(0.0, 500.0), 900.0)),
                )
            )
        else:
            jobs.append(QueryJob(arrival=arrival, origin=origin, low=low, high=low + 80.0))
    return jobs


def run_sequentially(system: ArmadaSystem, jobs):
    results = []
    for job in jobs:
        if job.ranges is not None:
            results.append(system.multi_range_query(job.ranges, origin=job.origin))
        else:
            results.append(system.range_query(job.low, job.high, origin=job.origin))
    return results


def assert_equivalent(jobs, concurrent_report, sequential_results):
    by_job = {id(record.job): record.result for record in concurrent_report.completed}
    assert len(by_job) == len(jobs)
    for job, sequential in zip(jobs, sequential_results):
        concurrent = by_job[id(job)]
        assert concurrent.destinations == sequential.destinations
        assert concurrent.messages == sequential.messages
        assert concurrent.delay_hops == sequential.delay_hops
        assert concurrent.forwarding_steps == sequential.forwarding_steps
        assert sorted(map(str, concurrent.matching_values())) == sorted(
            map(str, sequential.matching_values())
        )


class TestConcurrentSequentialEquivalence:
    def test_200_mixed_queries_identical_to_sequential(self):
        """The acceptance property: N=200 mixed PIRA/MIRA, byte-identical."""
        jobs = make_mixed_jobs(build_system(seed=21), count=200, rate=8.0, seed=99)

        concurrent_system = build_system(seed=21)
        report = QueryEngine(concurrent_system).run_open_loop(jobs)
        assert report.queries == 200

        sequential_system = build_system(seed=21)
        sequential = run_sequentially(sequential_system, jobs)

        assert_equivalent(jobs, report, sequential)

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=50),
        rate=st.floats(min_value=0.2, max_value=50.0, allow_nan=False),
    )
    def test_equivalence_across_seeds_and_rates(self, seed: int, rate: float):
        jobs = make_mixed_jobs(build_system(seed=7, num_peers=96), 30, rate, seed)

        concurrent_system = build_system(seed=7, num_peers=96)
        report = QueryEngine(concurrent_system).run_open_loop(jobs)

        sequential_system = build_system(seed=7, num_peers=96)
        sequential = run_sequentially(sequential_system, jobs)

        assert_equivalent(jobs, report, sequential)

    def test_closed_loop_equivalent_too(self):
        jobs = make_mixed_jobs(build_system(seed=4, num_peers=96), 40, rate=5.0, seed=13)

        concurrent_system = build_system(seed=4, num_peers=96)
        report = QueryEngine(concurrent_system).run_closed_loop(jobs, concurrency=6)

        sequential_system = build_system(seed=4, num_peers=96)
        sequential = run_sequentially(sequential_system, jobs)

        assert_equivalent(jobs, report, sequential)

    def test_empty_fault_plan_is_byte_identical_to_fault_free(self):
        """The faults acceptance property: an engine configured with an
        empty FaultPlan, a full resilience policy and a deadline produces
        measurements byte-identical to the plain fault-free path — the
        fault machinery is invisible until a fault actually exists."""
        from repro.faults import FaultPlan, ResiliencePolicy

        jobs = make_mixed_jobs(build_system(seed=21), count=200, rate=8.0, seed=99)

        guarded_system = build_system(seed=21)
        assert guarded_system.install_faults(FaultPlan.empty()) is None
        assert guarded_system.overlay.fault_injector is None
        guarded_system.set_resilience(
            ResiliencePolicy(per_hop_timeout=4.0, max_retries=2, reroute=True)
        )
        report = QueryEngine(guarded_system, deadline=500.0).run_open_loop(jobs)
        assert report.queries == 200
        assert report.failed == 0 and report.stalled == 0 and report.dropped == 0

        plain_system = build_system(seed=21)
        plain_report = QueryEngine(plain_system).run_open_loop(jobs)

        assert_equivalent(jobs, report, run_sequentially(build_system(seed=21), jobs))
        # Identical timing too, not just identical measurements: timers are
        # cancelled before firing, so the processed-event stream matches.
        guarded = {id(r.job): r for r in report.completed}
        for record in plain_report.completed:
            twin = guarded[id(record.job)]
            assert twin.started_at == record.started_at
            assert twin.completed_at == record.completed_at
        assert report.messages == plain_report.messages
        assert report.events == plain_report.events
