"""Property-based tests for FISSIONE topology maintenance and routing."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fissione.network import FissioneNetwork
from repro.fissione.routing import route
from repro.fissione.stabilize import check_topology
from repro.kautz import strings as ks
from repro.sim.rng import DeterministicRNG


class TestTopologyProperties:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=3, max_value=120), st.integers(min_value=0, max_value=1000))
    def test_random_build_always_healthy(self, num_peers, seed):
        network = FissioneNetwork.build(
            num_peers, DeterministicRNG(seed).substream("topology"), object_id_length=20
        )
        report = check_topology(network)
        assert report.healthy
        assert report.within_paper_bounds()

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=500),
        st.lists(st.sampled_from(["join", "leave"]), min_size=1, max_size=40),
    )
    def test_arbitrary_churn_sequences_preserve_invariants(self, seed, operations):
        rng = DeterministicRNG(seed)
        network = FissioneNetwork.build(20, rng.substream("topology"), object_id_length=20)
        for index, operation in enumerate(operations):
            if operation == "join":
                network.join(rng=rng.substream("join", index))
            elif network.size > network.base + 1:
                victim = network.random_peer(rng.substream("leave", index)).peer_id
                network.leave(victim)
        report = check_topology(network)
        assert report.covers_namespace
        assert report.prefix_free
        assert report.neighborhood_violations == 0

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=10 ** 6))
    def test_routing_reaches_owner_with_bounded_hops(self, seed, key_seed):
        network = FissioneNetwork.build(
            60, DeterministicRNG(seed).substream("topology"), object_id_length=20
        )
        rng = DeterministicRNG(key_seed)
        object_id = ks.unrank(
            key_seed % ks.space_size(2, 20), 20, base=2
        )
        source = network.random_peer(rng).peer_id
        path = route(network, source, object_id)
        assert path.destination == network.owner_id(object_id)
        assert path.hops <= len(source)
