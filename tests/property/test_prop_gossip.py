"""Property tests: membership convergence under seeded loss interleavings.

The sim-side gossip model (:class:`repro.gossip.GossipSim`) runs the
exact live SWIM protocol code over the discrete-event simulator with a
seeded lossy bus — one (seed, loss) pair is one exact message-loss
interleaving.  Hypothesis sweeps that space and asserts the protocol's
core promise at every point: surviving views converge to one agreed
liveness verdict, dead peers end up dead everywhere, and no healthy peer
is ever written off.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip import ALIVE, DEAD, SUSPECT, GossipSim, SwimConfig

FAST = SwimConfig(
    interval=0.05, ping_timeout=0.05, indirect_timeout=0.08, suspicion_timeout=0.3
)

#: generous sim-time budget: even at 40% loss the rumor mill has hundreds
#: of rounds here, so a timeout is a real convergence failure, not noise
TIMEOUT = 60.0


class TestConvergenceUnderLoss:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        loss=st.floats(min_value=0.0, max_value=0.4),
        nodes=st.integers(min_value=3, max_value=7),
    )
    def test_views_converge_on_a_crash(self, seed, loss, nodes):
        sim = GossipSim(nodes=nodes, seed=seed, config=FAST, loss=loss, peers_per_node=2)
        sim.start()
        sim.run(until=1.0)
        victims = sim.crash(f"node-{seed % nodes}")
        when = sim.run_until_converged(expect_dead=victims, timeout=TIMEOUT)
        assert when is not None, (
            f"no convergence within {TIMEOUT} sim-seconds "
            f"(seed={seed}, loss={loss:.2f}, nodes={nodes})"
        )
        views = sim.surviving_views()
        fingerprints = {view.liveness_view() for view in views}
        assert len(fingerprints) == 1
        for view in views:
            for victim in victims:
                assert view.state_of(victim) == DEAD

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        loss=st.floats(min_value=0.0, max_value=0.4),
    )
    def test_healthy_peers_end_up_alive_everywhere(self, seed, loss):
        """Loss alone must never *permanently* bury a peer.

        At high loss a refutation can lose the race against a suspicion
        timeout, so a healthy peer may transiently read ``dead`` in some
        view — that is inherent to SWIM, not a bug.  What the protocol
        does guarantee is the eventual fix: the peer's own host refutes
        every rumor about its live tenants at a fresh incarnation, so the
        stable agreement point is all-alive.
        """
        sim = GossipSim(nodes=5, seed=seed, config=FAST, loss=loss)
        sim.start()
        sim.run(until=5.0)
        when = sim.run_until_converged(timeout=TIMEOUT)
        assert when is not None, (
            f"views never re-converged under loss={loss:.2f} (seed={seed})"
        )
        for view in sim.surviving_views():
            for peer in (f"P{index}" for index in range(5)):
                # A just-adopted suspicion may still be in flight at the
                # sampled instant; buried (dead/left) is the failure.
                assert view.state_of(peer) in (ALIVE, SUSPECT)
