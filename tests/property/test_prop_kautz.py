"""Property-based tests for the Kautz string substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kautz import strings as ks
from repro.kautz.region import KautzRegion


def kautz_strings(min_length=1, max_length=10, base=2):
    """Strategy producing valid Kautz strings via their rank."""

    @st.composite
    def build(draw):
        length = draw(st.integers(min_value=min_length, max_value=max_length))
        index = draw(st.integers(min_value=0, max_value=ks.space_size(base, length) - 1))
        return ks.unrank(index, length, base=base)

    return build()


def kautz_prefixes(max_length=8, base=2):
    """Strategy producing valid Kautz prefixes (possibly empty)."""

    @st.composite
    def build(draw):
        length = draw(st.integers(min_value=0, max_value=max_length))
        if length == 0:
            return ""
        index = draw(st.integers(min_value=0, max_value=ks.space_size(base, length) - 1))
        return ks.unrank(index, length, base=base)

    return build()


class TestStringProperties:
    @given(kautz_strings())
    def test_generated_strings_are_valid(self, value):
        assert ks.is_kautz_string(value, base=2)

    @given(kautz_strings(min_length=3, max_length=8))
    def test_rank_unrank_roundtrip(self, value):
        assert ks.unrank(ks.rank(value), len(value)) == value

    @given(kautz_prefixes(max_length=6), st.integers(min_value=6, max_value=10))
    def test_extensions_are_valid_and_ordered(self, prefix, length):
        low = ks.min_extension(prefix, length)
        high = ks.max_extension(prefix, length)
        assert ks.is_kautz_string(low, base=2)
        assert ks.is_kautz_string(high, base=2)
        assert low.startswith(prefix) and high.startswith(prefix)
        assert low <= high

    @given(kautz_prefixes(max_length=5), st.integers(min_value=5, max_value=8))
    def test_extension_bounds_are_tight(self, prefix, length):
        """Every extension of the prefix lies between min and max extensions."""
        low = ks.min_extension(prefix, length)
        high = ks.max_extension(prefix, length)
        for value in ks.kautz_strings_with_prefix(prefix, length)[:32]:
            assert low <= value <= high

    @given(kautz_strings(max_length=6), kautz_strings(max_length=6))
    def test_splice_is_valid_and_has_both_parts(self, first, second):
        spliced = ks.splice(first, second)
        assert ks.is_kautz_string(spliced, base=2)
        assert spliced.startswith(first) or first.startswith(spliced)
        assert spliced.endswith(second)
        assert len(spliced) <= len(first) + len(second)

    @given(kautz_strings(min_length=4, max_length=8))
    def test_successor_is_next_in_order(self, value):
        nxt = ks.successor(value)
        if nxt is not None:
            assert nxt > value
            assert ks.rank(nxt) == ks.rank(value) + 1


class TestRegionProperties:
    @given(
        st.integers(min_value=5, max_value=7),
        st.integers(min_value=0, max_value=10 ** 6),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_region_size_matches_rank_difference(self, length, seed_a, seed_b):
        size = ks.space_size(2, length)
        first = ks.unrank(seed_a % size, length)
        second = ks.unrank(seed_b % size, length)
        low, high = min(first, second), max(first, second)
        region = KautzRegion(low, high)
        assert region.size == ks.rank(high) - ks.rank(low) + 1

    @settings(max_examples=40)
    @given(
        st.integers(min_value=0, max_value=10 ** 6),
        st.integers(min_value=0, max_value=10 ** 6),
        kautz_prefixes(max_length=5),
    )
    def test_contains_prefix_agrees_with_enumeration(self, seed_a, seed_b, prefix):
        length = 6
        size = ks.space_size(2, length)
        first = ks.unrank(seed_a % size, length)
        second = ks.unrank(seed_b % size, length)
        region = KautzRegion(min(first, second), max(first, second))
        expected = any(member.startswith(prefix) for member in region)
        assert region.contains_prefix(prefix) == expected

    @given(
        st.integers(min_value=0, max_value=10 ** 6),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_split_by_first_symbol_partitions_region(self, seed_a, seed_b):
        length = 6
        size = ks.space_size(2, length)
        first = ks.unrank(seed_a % size, length)
        second = ks.unrank(seed_b % size, length)
        region = KautzRegion(min(first, second), max(first, second))
        parts = region.split_by_first_symbol()
        union = []
        for part in parts:
            assert part.common_prefix() != "" or region.common_prefix() != ""
            union.extend(part)
        assert sorted(union) == sorted(region)
        assert len(union) == len(set(union))
