"""Property-based tests for the Single_hash / Multiple_hash naming algorithms."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiple_hash import MultiAttributeNamer
from repro.core.single_hash import SingleAttributeNamer
from repro.kautz import strings as ks

NAMER = SingleAttributeNamer(low=0.0, high=1000.0, length=12)
MULTI = MultiAttributeNamer(intervals=((0.0, 100.0), (0.0, 50.0)), length=12)

values = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False)
coords = st.tuples(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False),
)


class TestSingleHashProperties:
    @given(values)
    def test_names_are_valid_fixed_length_kautz_strings(self, value):
        object_id = NAMER.name(value)
        assert len(object_id) == 12
        assert ks.is_kautz_string(object_id, base=2)

    @given(values, values)
    def test_order_preservation(self, first, second):
        if first <= second:
            assert NAMER.name(first) <= NAMER.name(second)
        else:
            assert NAMER.name(first) >= NAMER.name(second)

    @given(values)
    def test_inverse_interval_contains_value(self, value):
        object_id = NAMER.name(value)
        assert NAMER.value_interval(object_id).contains(value)

    @given(values, values, values)
    def test_values_inside_range_map_into_region(self, value, bound_a, bound_b):
        low, high = min(bound_a, bound_b), max(bound_a, bound_b)
        region = NAMER.region_for_range(low, high)
        if low <= value <= high:
            assert NAMER.name(value) in region

    @settings(max_examples=60)
    @given(values, values, values)
    def test_values_outside_range_never_lost_by_region(self, value, bound_a, bound_b):
        """Contrapositive of interval preservation: names outside the region
        belong to values outside the range."""
        low, high = min(bound_a, bound_b), max(bound_a, bound_b)
        region = NAMER.region_for_range(low, high)
        if NAMER.name(value) not in region:
            assert not (low <= value <= high)


class TestMultipleHashProperties:
    @given(coords)
    def test_names_are_valid_kautz_strings(self, point):
        object_id = MULTI.name(point)
        assert len(object_id) == 12
        assert ks.is_kautz_string(object_id, base=2)

    @given(coords, coords)
    def test_partial_order_preservation(self, first, second):
        if all(a <= b for a, b in zip(first, second)):
            assert MULTI.name(first) <= MULTI.name(second)

    @given(coords)
    def test_box_of_every_prefix_contains_the_point(self, point):
        object_id = MULTI.name(point)
        for cut in range(0, len(object_id) + 1, 3):
            assert MULTI.box_for_label(object_id[:cut]).contains(point)

    @given(coords, coords, coords)
    def test_matching_points_intersect_query_labels(self, point, corner_a, corner_b):
        ranges = [
            (min(corner_a[0], corner_b[0]), max(corner_a[0], corner_b[0])),
            (min(corner_a[1], corner_b[1]), max(corner_a[1], corner_b[1])),
        ]
        if all(low <= value <= high for value, (low, high) in zip(point, ranges)):
            object_id = MULTI.name(point)
            # MIRA's pruning predicate must keep every prefix of a matching
            # object's id alive.
            for cut in (2, 5, 9, 12):
                assert MULTI.label_intersects_query(object_id[:cut], ranges)
