"""Property-based tests for PIRA / MIRA query processing invariants.

These drive the full system (random topology, random data, random query) and
assert the paper's key guarantees: exact results, exactly the intersecting
destination peers, and the 2*logN delay bound.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.armada import ArmadaSystem
from repro.sim.rng import DeterministicRNG

_SYSTEM_CACHE = {}


def get_system(seed: int) -> ArmadaSystem:
    """Build (and cache) a small system with data for a topology seed."""
    if seed not in _SYSTEM_CACHE:
        system = ArmadaSystem(num_peers=48 + 8 * seed, seed=seed, attribute_interval=(0.0, 1000.0))
        rng = DeterministicRNG(seed).substream("prop-values")
        values = [rng.uniform(0.0, 1000.0) for _ in range(400)]
        system.insert_many(values)
        system.prop_values = values  # type: ignore[attr-defined]
        _SYSTEM_CACHE[seed] = system
    return _SYSTEM_CACHE[seed]


query_bounds = st.tuples(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
)


class TestPiraProperties:
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=3), query_bounds)
    def test_results_are_exact(self, topology_seed, bounds):
        system = get_system(topology_seed)
        low, high = min(bounds), max(bounds)
        result = system.range_query(low, high)
        expected = sorted(v for v in system.prop_values if low <= v <= high)
        assert sorted(result.matching_values()) == expected

    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=3), query_bounds)
    def test_destinations_are_exactly_the_intersecting_peers(self, topology_seed, bounds):
        system = get_system(topology_seed)
        low, high = min(bounds), max(bounds)
        result = system.range_query(low, high)
        assert set(result.destinations) == system.pira.ground_truth_destinations(low, high)

    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=3), query_bounds)
    def test_delay_is_bounded(self, topology_seed, bounds):
        system = get_system(topology_seed)
        low, high = min(bounds), max(bounds)
        result = system.range_query(low, high)
        assert result.delay_hops <= 2 * math.log2(system.size) + 1

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=3), query_bounds)
    def test_each_destination_receives_one_result_record(self, topology_seed, bounds):
        system = get_system(topology_seed)
        low, high = min(bounds), max(bounds)
        result = system.range_query(low, high)
        # hop counts recorded per destination are within the FRT height
        assert all(0 <= hop <= len(result.origin) for hop in result.destinations.values())
        # messages are at least destinations - 1 (a tree needs that many edges)
        assert result.messages >= max(0, result.destination_count - 1)


_MULTI_CACHE = {}


def get_multi_system(seed: int) -> ArmadaSystem:
    if seed not in _MULTI_CACHE:
        system = ArmadaSystem(
            num_peers=48,
            seed=seed + 100,
            attribute_interval=(0.0, 100.0),
            attribute_intervals=((0.0, 100.0), (0.0, 100.0)),
        )
        rng = DeterministicRNG(seed).substream("prop-multi")
        records = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(250)]
        for record in records:
            system.insert_multi(record, payload=record)
        system.prop_records = records  # type: ignore[attr-defined]
        _MULTI_CACHE[seed] = system
    return _MULTI_CACHE[seed]


box_bounds = st.tuples(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)


class TestMiraProperties:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=2), box_bounds)
    def test_results_are_exact(self, topology_seed, bounds):
        system = get_multi_system(topology_seed)
        ranges = [
            (min(bounds[0], bounds[1]), max(bounds[0], bounds[1])),
            (min(bounds[2], bounds[3]), max(bounds[2], bounds[3])),
        ]
        result = system.multi_range_query(ranges)
        expected = sorted(
            record
            for record in system.prop_records
            if all(low <= value <= high for value, (low, high) in zip(record, ranges))
        )
        assert sorted(tuple(stored.key) for stored in result.matches) == expected

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=2), box_bounds)
    def test_delay_is_bounded(self, topology_seed, bounds):
        system = get_multi_system(topology_seed)
        ranges = [
            (min(bounds[0], bounds[1]), max(bounds[0], bounds[1])),
            (min(bounds[2], bounds[3]), max(bounds[2], bounds[3])),
        ]
        result = system.multi_range_query(ranges)
        assert result.delay_hops <= 2 * math.log2(system.size) + 1
