"""Property test: v2 replies re-associate to the right futures.

Satellite of the API-redesign PR.  Protocol v2's whole point is that one
connection carries many in-flight requests whose replies arrive in *any*
order — so the client's rid→future re-association must be correct under
every interleaving, not just the ones a live gateway happens to produce.

Hypothesis drives a scripted in-test server that answers a batch of
requests in an arbitrary permutation, interleaving each reply's ``chunk``
frames, and the test asserts every :class:`~repro.api.live.LiveSession`
future resolves to *its own* request's payload (the reply echoes a value
derived from the request, so a mix-up cannot cancel out).
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.live import _V2Connection
from repro.api.requests import Insert
from repro.runtime.protocol import encode_frame, read_frame, welcome_frame


async def _permuting_server_round(permutation, chunk_counts):
    """One client/server exchange: the server replies in ``permutation``
    order; each reply is preceded by that request's ``chunk`` frames."""
    count = len(permutation)
    received: dict = {}

    async def handler(reader, writer):
        hello = await read_frame(reader)
        assert hello["type"] == "hello"
        writer.write(encode_frame(welcome_frame()))
        await writer.drain()
        frames = [await read_frame(reader) for _ in range(count)]
        for frame in frames:
            received[frame["rid"]] = frame["request"]
        rids = [frames[index]["rid"] for index in permutation]
        for order, rid in enumerate(rids):
            for chunk_index in range(chunk_counts[permutation[order]]):
                writer.write(
                    encode_frame(
                        {
                            "type": "chunk",
                            "rid": rid,
                            "peer": f"peer-{rid}",
                            "hop": chunk_index,
                            "values": [],
                        }
                    )
                )
            # The reply echoes the request's own value back through a field
            # the client returns verbatim — the re-association witness.
            writer.write(
                encode_frame(
                    {
                        "type": "reply",
                        "rid": rid,
                        "payload": {
                            "ok": True,
                            "type": "inserted",
                            "object_id": str(received[rid]["value"]),
                            "owner": f"owner-{rid}",
                        },
                    }
                )
            )
        await writer.drain()

    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        connection = await _V2Connection.connect("127.0.0.1", port)
        try:
            chunks_seen = [0] * count
            futures = []
            for index in range(count):
                on_chunk = (
                    lambda chunk, index=index: chunks_seen.__setitem__(
                        index, chunks_seen[index] + 1
                    )
                )
                futures.append(
                    connection.post(Insert(value=float(index)), on_chunk=on_chunk)
                )
            await connection.drain()
            results = await asyncio.gather(*futures)
        finally:
            await connection.close()
    finally:
        server.close()
        await server.wait_closed()

    for index, (payload, chunk_total) in enumerate(results):
        assert payload["object_id"] == str(float(index)), (
            f"request {index} got someone else's reply: {payload}"
        )
        assert chunk_total == chunk_counts[index]
        assert chunks_seen[index] == chunk_counts[index]


@st.composite
def interleavings(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    permutation = draw(st.permutations(range(count)))
    chunk_counts = draw(
        st.lists(st.integers(min_value=0, max_value=3), min_size=count, max_size=count)
    )
    return permutation, chunk_counts


@settings(max_examples=30, deadline=None)
@given(interleavings())
def test_interleaved_replies_reassociate_to_their_futures(case):
    permutation, chunk_counts = case
    asyncio.run(_permuting_server_round(list(permutation), chunk_counts))
