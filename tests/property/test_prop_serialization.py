"""Property tests: wire serialization is the identity after a JSON trip.

Satellite of the live-runtime PR: the gateway ships
:class:`RangeQueryResult` (and soak runs ship :class:`EngineReport`) as
JSON, so encode→decode must reproduce *every* field exactly — including
tuple-typed keys, forwarding-step triples and the resilience ledger's
bool.  Hypothesis builds structurally arbitrary instances and asserts
``from_wire(json.loads(json.dumps(to_wire(x)))) == x``.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pira import RangeQueryResult
from repro.engine.reporting import CompletedQuery, EngineReport, QueryJob
from repro.faults.resilience import ResilienceStats
from repro.fissione.peer import StoredObject

# -- strategies --------------------------------------------------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
peer_ids = st.text(alphabet="012", min_size=1, max_size=8)
counts = st.integers(min_value=0, max_value=10**6)

#: JSON-compatible values, plus tuples (which the codec must preserve)
wire_values = st.recursive(
    st.one_of(st.none(), st.booleans(), counts, finite_floats, st.text(max_size=12)),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=6).filter(lambda k: k != "__tuple__"), children, max_size=3),
    ),
    max_leaves=8,
)

stored_objects = st.builds(
    StoredObject,
    object_id=st.text(alphabet="012", min_size=1, max_size=16),
    key=st.one_of(finite_floats, st.tuples(finite_floats, finite_floats)),
    value=wire_values,
)

resilience_stats = st.builds(
    ResilienceStats,
    drops=counts,
    timeouts=counts,
    retries=counts,
    reroutes=counts,
    subtrees_lost=counts,
    recovered_destinations=counts,
    deadline_expired=st.booleans(),
)

range_results = st.builds(
    RangeQueryResult,
    origin=peer_ids,
    query_id=st.integers(min_value=1, max_value=10**9),
    destinations=st.dictionaries(peer_ids, st.integers(min_value=0, max_value=64), max_size=5),
    messages=counts,
    matches=st.lists(stored_objects, max_size=4),
    forwarding_steps=st.lists(
        st.tuples(peer_ids, peer_ids, st.integers(min_value=0, max_value=64)), max_size=5
    ),
    resilience=resilience_stats,
)

query_jobs = st.builds(
    QueryJob,
    arrival=finite_floats,
    origin=st.one_of(st.none(), peer_ids),
    low=finite_floats,
    high=finite_floats,
    ranges=st.one_of(
        st.none(),
        st.lists(st.tuples(finite_floats, finite_floats), min_size=1, max_size=3).map(tuple),
    ),
)

completed_queries = st.builds(
    CompletedQuery,
    job=query_jobs,
    result=range_results,
    started_at=finite_floats,
    completed_at=finite_floats,
)

percentile_dicts = st.dictionaries(
    st.sampled_from(["p50", "p95", "p99"]), finite_floats, max_size=3
)

engine_reports = st.builds(
    EngineReport,
    completed=st.lists(completed_queries, max_size=3),
    started=counts,
    makespan=finite_floats,
    throughput=finite_floats,
    latency_percentiles=percentile_dicts,
    delay_percentiles=percentile_dicts,
    mean_latency=finite_floats,
    mean_delay_hops=finite_floats,
    messages=counts,
    events=counts,
    succeeded=counts,
    failed=counts,
    stalled=counts,
    dropped=counts,
    resilience=resilience_stats,
)


def json_trip(wire):
    """The exact transformation a frame undergoes on the wire."""
    return json.loads(json.dumps(wire))


# -- identities --------------------------------------------------------------


@given(stats=resilience_stats)
def test_resilience_stats_round_trip(stats):
    assert ResilienceStats.from_dict(json_trip(stats.as_dict())) == stats


@given(stored=stored_objects)
def test_stored_object_round_trip(stored):
    assert StoredObject.from_wire(json_trip(stored.to_wire())) == stored


@settings(max_examples=50)
@given(result=range_results)
def test_range_query_result_round_trip(result):
    rebuilt = RangeQueryResult.from_wire(json_trip(result.to_wire()))
    assert rebuilt == result
    # spot-check the typed invariants JSON tends to destroy
    assert all(isinstance(step, tuple) for step in rebuilt.forwarding_steps)
    assert isinstance(rebuilt.resilience.deadline_expired, bool)


@given(job=query_jobs)
def test_query_job_round_trip(job):
    rebuilt = QueryJob.from_wire(json_trip(job.to_wire()))
    assert rebuilt == job
    assert rebuilt.kind == job.kind


@settings(max_examples=25)
@given(report=engine_reports)
def test_engine_report_round_trip(report):
    rebuilt = EngineReport.from_wire(json_trip(report.to_wire()))
    assert rebuilt == report
    assert rebuilt.success_ratio == report.success_ratio
