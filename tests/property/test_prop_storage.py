"""Property tests: WAL/SQLite replay ≡ memory state at the last sync.

Satellite of the durable-storage PR.  The storage contract says a durable
backend may lose writes made after the last ``sync()`` barrier at a power
failure, but must reproduce the synced prefix of the history *exactly* —
the content-addressed digest over the replayed state equals the digest of
a memory store that applied only the synced operations.  Hypothesis
drives interleaved inserts, overwrites (second copies under the same
ObjectID), replica appends, zone hand-offs (``take_prefix``) and sync
barriers, then crashes the store at an arbitrary point in the history —
including **mid-record**: the WAL torn-tail test cuts the log file at an
arbitrary byte offset, the crash a real ``kill -9`` leaves behind.
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import open_store
from repro.storage.memory import MemoryStore

OBJECT_IDS = ("010", "012", "0101", "0102", "0120", "0201", "0210", "1010", "2101")
PREFIXES = ("0", "01", "02", "012", "1", "21")

keys = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.tuples(st.floats(-10, 10), st.floats(-10, 10)),
)
values = st.one_of(st.none(), st.floats(-100, 100), st.text(max_size=8))

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(OBJECT_IDS), keys, values),
        st.tuples(st.just("rput"), st.sampled_from(OBJECT_IDS), keys, values),
        st.tuples(st.just("take"), st.sampled_from(PREFIXES)),
        st.tuples(st.just("sync")),
    ),
    max_size=30,
)


def apply(store, op):
    if op[0] == "put":
        store.put(op[1], key=op[2], value=op[3])
    elif op[0] == "rput":
        store.put_replica(op[1], key=op[2], value=op[3])
    elif op[0] == "take":
        store.take_prefix(op[1])
    elif op[0] == "sync":
        store.sync()


def model_at_last_sync(ops):
    """A memory store holding exactly the synced prefix of the history."""
    last_sync = 0
    for index, op in enumerate(ops):
        if op[0] == "sync":
            last_sync = index + 1
    model = MemoryStore()
    for op in ops[:last_sync]:
        apply(model, op)
    return model


def digests(store):
    return (store.digest(), store.digest(replicas=True))


@settings(max_examples=60, deadline=None)
@given(ops=operations, backend=st.sampled_from(["wal", "sqlite"]))
def test_replay_equals_memory_state_at_last_sync(ops, backend):
    with tempfile.TemporaryDirectory() as tmp:
        store = open_store(backend, os.path.join(tmp, f"peer.{backend}"),
                           sync_mode="manual")
        for op in ops:
            apply(store, op)
        store.power_fail()  # crash at an arbitrary point in the history
        store.replay()
        assert digests(store) == digests(model_at_last_sync(ops))
        store.close()


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_synced_history_survives_close_and_reopen(ops):
    """Replay of a cleanly closed log ≡ the whole history, both backends
    agreeing with each other bit for bit."""
    with tempfile.TemporaryDirectory() as tmp:
        reference = MemoryStore()
        stores = [
            open_store("wal", os.path.join(tmp, "peer.wal")),
            open_store("sqlite", os.path.join(tmp, "peer.sqlite")),
        ]
        for op in ops:
            apply(reference, op)
            for store in stores:
                apply(store, op)
        for store in stores:
            store.close()
        for backend in ("wal", "sqlite"):
            reopened = open_store(backend, os.path.join(tmp, f"peer.{backend}"))
            reopened.replay()
            assert digests(reopened) == digests(reference)
            reopened.close()


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.just("put"), st.sampled_from(OBJECT_IDS), keys, values),
        min_size=1,
        max_size=12,
    ),
    cut_back=st.integers(min_value=1, max_value=200),
)
def test_wal_torn_tail_at_any_byte_boundary(ops, cut_back):
    """Cut the log at an arbitrary byte and replay: the state equals the
    longest prefix of synced records that fits below the cut — a torn
    final record is dropped, never an error, and never a partial apply."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "peer.wal")
        store = open_store("wal", path)  # sync after every record
        sizes = [os.path.getsize(path)]
        for op in ops:
            apply(store, op)
            sizes.append(os.path.getsize(path))
        store.close()

        cut = max(sizes[0], sizes[-1] - cut_back)
        with open(path, "r+b") as handle:
            handle.truncate(cut)
        survivors = max(i for i, size in enumerate(sizes) if size <= cut)

        store = open_store("wal", path)
        assert store.replay() == survivors
        assert digests(store) == digests(model_at_last_sync(
            list(ops[:survivors]) + [("sync",)]
        ))
        store.close()
