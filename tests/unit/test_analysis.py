"""Unit tests for aggregation, tables and figure emitters."""

from __future__ import annotations

import math

import pytest

from repro.analysis.figures import ascii_chart, series_to_csv
from repro.analysis.stats import aggregate_measurements
from repro.analysis.tables import format_table
from repro.rangequery.base import QueryMeasurement


class TestAggregation:
    def test_averages_and_ratios(self):
        measurements = [
            QueryMeasurement(delay_hops=8, messages=30, destination_peers=10, matches=[1.0]),
            QueryMeasurement(delay_hops=10, messages=50, destination_peers=20, matches=[]),
        ]
        row = aggregate_measurements("PIRA", 20.0, measurements, network_size=1024)
        assert row.queries == 2
        assert row.avg_delay == pytest.approx(9.0)
        assert row.max_delay == 10
        assert row.avg_messages == pytest.approx(40.0)
        assert row.avg_destinations == pytest.approx(15.0)
        assert row.log_n == pytest.approx(10.0)
        assert row.mesg_ratio == pytest.approx(40.0 / 15.0)
        assert row.incre_ratio == pytest.approx((40.0 - 10.0) / 14.0)
        assert row.avg_matches == pytest.approx(0.5)

    def test_empty_measurements(self):
        row = aggregate_measurements("PIRA", 20.0, [], network_size=1024)
        assert row.queries == 0
        assert row.avg_delay == 0.0
        assert row.mesg_ratio == 0.0

    def test_single_destination_has_zero_incre_ratio(self):
        measurements = [QueryMeasurement(delay_hops=5, messages=12, destination_peers=1)]
        row = aggregate_measurements("PIRA", 2.0, measurements, network_size=256)
        assert row.incre_ratio == 0.0

    def test_as_dict_round_trip(self):
        row = aggregate_measurements(
            "DCF-CAN", 50.0, [QueryMeasurement(3, 9, 4)], network_size=100
        )
        payload = row.as_dict()
        assert payload["scheme"] == "DCF-CAN"
        assert payload["x"] == 50.0
        assert payload["log_n"] == pytest.approx(math.log2(100))


class TestTables:
    def test_format_table_alignment_and_floats(self):
        text = format_table(
            ["name", "value"],
            [["short", 1.234], ["a-much-longer-name", 20]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.23" in text
        assert "a-much-longer-name" in text
        # all data rows have the same width
        assert len(lines[3]) == len(lines[4])

    def test_format_table_booleans(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestFigures:
    def test_series_to_csv_shape(self):
        csv_text = series_to_csv("x", [1.0, 2.0], {"a": [10.0, 20.0], "b": [1.0, 2.0]})
        lines = csv_text.splitlines()
        assert lines[0] == "x,a,b"
        assert lines[1].startswith("1,10.0000,1.0000")
        assert len(lines) == 3

    def test_ascii_chart_contains_series_markers_and_legend(self):
        chart = ascii_chart([1.0, 2.0, 3.0], {"PIRA": [1, 2, 3], "DCF": [3, 2, 1]}, title="demo")
        assert "demo" in chart
        assert "*" in chart and "o" in chart
        assert "PIRA" in chart and "DCF" in chart

    def test_ascii_chart_empty_series(self):
        assert ascii_chart([], {}, title="empty") == "empty"
