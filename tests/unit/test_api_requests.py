"""Unit tests for the ``repro.api`` request/reply model."""

from __future__ import annotations

import json

import pytest

from repro.api.requests import (
    ApiError,
    Insert,
    MultiInsert,
    MultiRangeQuery,
    Ping,
    QueryReply,
    RangeQuery,
    RequestOptions,
    Stats,
    better_query_reply,
    reply_from_payload,
    request_from_job,
    request_from_wire,
)
from repro.core.pira import RangeQueryResult
from repro.engine.reporting import QueryJob


class TestRequestWire:
    def test_round_trip_every_op(self):
        requests = [
            RangeQuery(low=1.0, high=2.0),
            RangeQuery(low=1.0, high=2.0, options=RequestOptions(origin="010", deadline=3.0)),
            MultiRangeQuery(ranges=((0.0, 1.0), (2.0, 3.0))),
            Insert(value=42.0),
            MultiInsert(values=(1.0, 2.0)),
            Stats(),
            Ping(),
        ]
        for request in requests:
            wire = json.loads(json.dumps(request.to_wire()))
            assert request_from_wire(wire) == request

    def test_default_options_omitted_from_wire(self):
        wire = RangeQuery(low=0.0, high=1.0).to_wire()
        assert "options" not in wire

    def test_non_default_options_round_trip(self):
        for options in (
            RequestOptions(origin="010", deadline=2.5, replicas=3, retries=1),
            RequestOptions(origin="012", deadline=0.5, retries=2, stream=True),
        ):
            rebuilt = RequestOptions.from_wire(json.loads(json.dumps(options.to_wire())))
            assert rebuilt == options

    def test_unknown_op_rejected(self):
        with pytest.raises(ApiError, match="unknown request op"):
            request_from_wire({"op": "frobnicate"})

    def test_non_object_rejected(self):
        with pytest.raises(ApiError, match="JSON object"):
            request_from_wire([1, 2, 3])

    def test_malformed_fields_rejected(self):
        with pytest.raises(ApiError, match="malformed"):
            request_from_wire({"op": "range", "low": "abc", "high": 2.0})
        with pytest.raises(ApiError, match="malformed"):
            request_from_wire({"op": "range"})  # missing bounds

    def test_validation(self):
        with pytest.raises(ApiError, match="exceeds"):
            RangeQuery(low=2.0, high=1.0)
        with pytest.raises(ApiError, match="at least one range"):
            MultiRangeQuery(ranges=())
        with pytest.raises(ApiError, match="deadline"):
            RequestOptions(deadline=0.0)
        with pytest.raises(ApiError, match="replicas"):
            RequestOptions(replicas=0)
        with pytest.raises(ApiError, match="retries"):
            RequestOptions(retries=-1)
        with pytest.raises(ApiError, match="stream and replicas"):
            RequestOptions(stream=True, replicas=2)

    def test_with_options(self):
        request = RangeQuery(low=0.0, high=1.0).with_options(deadline=9.0)
        assert request.options.deadline == 9.0
        assert request.low == 0.0


class TestJobConversion:
    def test_pira_job(self):
        job = QueryJob(arrival=1.0, origin="010", low=5.0, high=9.0)
        request = request_from_job(job)
        assert isinstance(request, RangeQuery)
        assert (request.low, request.high) == (5.0, 9.0)
        assert request.options.origin == "010"

    def test_mira_job_with_option_changes(self):
        job = QueryJob(arrival=0.0, origin="010", ranges=((0.0, 1.0), (2.0, 3.0)))
        request = request_from_job(job, deadline=2.0)
        assert isinstance(request, MultiRangeQuery)
        assert request.options.deadline == 2.0
        assert request.options.origin == "010"


class TestReplies:
    def make_result(self, complete=True, matches=0):
        result = RangeQueryResult(origin="010", query_id=1)
        result.destinations = {"012": 2}
        for index in range(matches):
            result.matches.append(None)
        if not complete:
            result.resilience.subtrees_lost = 1
        return result

    def test_query_reply_status_drives_ok(self):
        ok = QueryReply(status="ok", latency=0.1, result=self.make_result())
        partial = QueryReply(status="partial", latency=0.1, result=self.make_result(False))
        assert ok.ok and not partial.ok

    def test_decode_result_payload(self):
        payload = {
            "ok": True,
            "type": "result",
            "status": "ok",
            "latency": 0.25,
            "result": self.make_result().to_wire(),
        }
        reply = reply_from_payload(RangeQuery(low=0.0, high=1.0), payload, chunks=3)
        assert isinstance(reply, QueryReply)
        assert reply.chunks == 3
        assert reply.result.destinations == {"012": 2}

    def test_decode_error_payload(self):
        with pytest.raises(ApiError, match="boom"):
            reply_from_payload(Ping(), {"ok": False, "error": "boom"})

    def test_decode_unknown_type(self):
        with pytest.raises(ApiError, match="undecodable"):
            reply_from_payload(Ping(), {"ok": True, "type": "mystery"})

    def test_better_query_reply_prefers_completeness_then_matches(self):
        complete = QueryReply(status="ok", latency=9.0, result=self.make_result(True, 1))
        partial = QueryReply(status="partial", latency=0.1, result=self.make_result(False, 5))
        assert better_query_reply(complete, partial) is complete
        assert better_query_reply(partial, complete) is complete
        fuller = QueryReply(status="partial", latency=0.1, result=self.make_result(False, 9))
        assert better_query_reply(partial, fuller) is fuller
