"""Unit tests for the high-level ArmadaSystem API."""

from __future__ import annotations

import math

import pytest

from repro.core.armada import ArmadaSystem
from repro.core.errors import QueryError


class TestConstruction:
    def test_builds_requested_number_of_peers(self):
        system = ArmadaSystem(num_peers=48, seed=1)
        assert system.size == 48
        assert system.log_size() == pytest.approx(math.log2(48))

    def test_same_seed_same_topology(self):
        first = ArmadaSystem(num_peers=40, seed=9)
        second = ArmadaSystem(num_peers=40, seed=9)
        assert first.network.peer_ids() == second.network.peer_ids()

    def test_different_seed_different_topology(self):
        first = ArmadaSystem(num_peers=40, seed=9)
        second = ArmadaSystem(num_peers=40, seed=10)
        assert first.network.peer_ids() != second.network.peer_ids()

    def test_topology_report_is_healthy(self):
        assert ArmadaSystem(num_peers=60, seed=2).topology_report().healthy

    def test_stats_keys(self):
        stats = ArmadaSystem(num_peers=32, seed=3).stats()
        assert set(stats) >= {
            "peers",
            "objects",
            "log2_peers",
            "average_out_degree",
            "average_id_length",
            "max_id_length",
            "healthy",
        }

    def test_repr_mentions_sizes(self):
        system = ArmadaSystem(num_peers=16, seed=1)
        assert "peers=16" in repr(system)


class TestInsertAndQuery:
    def test_insert_returns_object_id_owned_by_some_peer(self):
        system = ArmadaSystem(num_peers=32, seed=5)
        object_id = system.insert(123.0, payload="x")
        owner = system.network.owner_id(object_id)
        assert object_id.startswith(owner)
        assert system.network.total_objects() == 1

    def test_insert_many_counts(self):
        system = ArmadaSystem(num_peers=32, seed=5)
        ids = system.insert_many([1.0, 2.0, 3.0])
        assert len(ids) == 3
        assert system.network.total_objects() == 3

    def test_range_query_default_origin(self):
        system = ArmadaSystem(num_peers=32, seed=5)
        system.insert_many([10.0, 20.0, 30.0])
        result = system.range_query(15.0, 30.0)
        assert sorted(result.matching_values()) == [20.0, 30.0]

    def test_range_query_invalid_bounds(self):
        system = ArmadaSystem(num_peers=32, seed=5)
        with pytest.raises(QueryError):
            system.range_query(5.0, 1.0)

    def test_exact_query_finds_only_exact_value(self):
        system = ArmadaSystem(num_peers=32, seed=6)
        system.insert(77.0, payload="target")
        system.insert(77.5, payload="near-miss")
        outcome = system.exact_query(77.0)
        assert [stored.value for stored in outcome.objects] == ["target"]
        assert outcome.delay_hops <= 2 * system.log_size() + 1

    def test_exact_query_route_starts_at_origin(self):
        system = ArmadaSystem(num_peers=32, seed=6)
        origin = system.network.peer_ids()[0]
        outcome = system.exact_query(10.0, origin=origin)
        assert outcome.route_path.peers[0] == origin

    def test_random_peer_id_is_member(self):
        system = ArmadaSystem(num_peers=32, seed=6)
        for _ in range(5):
            assert system.network.has_peer(system.random_peer_id())


class TestChurnApi:
    def test_add_peers_grows_network_and_queries_stay_exact(self):
        system = ArmadaSystem(num_peers=40, seed=8)
        values = [float(v) for v in range(0, 100, 5)]
        system.insert_many(values)
        system.add_peers(15)
        assert system.size == 55
        result = system.range_query(20.0, 60.0)
        assert sorted(result.matching_values()) == [v for v in values if 20.0 <= v <= 60.0]

    def test_remove_peers_shrinks_network_and_queries_stay_exact(self):
        system = ArmadaSystem(num_peers=40, seed=8)
        values = [float(v) for v in range(0, 100, 5)]
        system.insert_many(values)
        system.remove_peers(10)
        assert system.size == 30
        result = system.range_query(20.0, 60.0)
        assert sorted(result.matching_values()) == [v for v in values if 20.0 <= v <= 60.0]
        assert system.topology_report().healthy

    def test_remove_peers_stops_at_minimum(self):
        system = ArmadaSystem(num_peers=5, seed=8)
        system.remove_peers(10)
        assert system.size == 3
