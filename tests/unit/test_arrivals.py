"""Unit tests for arrival processes, Zipf query skew and churn schedules."""

from __future__ import annotations

import pytest

from repro.sim.rng import DeterministicRNG
from repro.workloads.arrivals import (
    ChurnEvent,
    ChurnSchedule,
    periodic_churn,
    poisson_arrival_times,
    uniform_arrival_times,
    zipf_range_queries,
)


class TestPoissonArrivals:
    def test_count_and_monotonicity(self):
        times = poisson_arrival_times(DeterministicRNG(1), rate=2.0, count=500)
        assert len(times) == 500
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
        assert times[0] > 0.0

    def test_mean_gap_matches_rate(self):
        rate = 4.0
        times = poisson_arrival_times(DeterministicRNG(7), rate=rate, count=4000)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.1)

    def test_deterministic_given_seed(self):
        a = poisson_arrival_times(DeterministicRNG(3), 1.0, 50)
        b = poisson_arrival_times(DeterministicRNG(3), 1.0, 50)
        assert a == b

    def test_start_offset(self):
        times = poisson_arrival_times(DeterministicRNG(1), 1.0, 10, start=100.0)
        assert times[0] > 100.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            poisson_arrival_times(DeterministicRNG(1), 1.0, -1)

    def test_zero_rate_rejected_even_for_empty_batches(self):
        # A zero-rate process would never produce an arrival; the workload
        # layer rejects it eagerly instead of looping forever downstream.
        with pytest.raises(ValueError):
            poisson_arrival_times(DeterministicRNG(1), 0.0, 5)
        with pytest.raises(ValueError):
            poisson_arrival_times(DeterministicRNG(1), 0.0, 0)
        with pytest.raises(ValueError):
            poisson_arrival_times(DeterministicRNG(1), -3.5, 5)

    def test_zero_count_yields_empty_batch(self):
        assert poisson_arrival_times(DeterministicRNG(1), 2.0, 0) == []


class TestUniformArrivals:
    def test_evenly_spaced(self):
        times = uniform_arrival_times(rate=2.0, count=5)
        assert times == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            uniform_arrival_times(0.0, 5)
        with pytest.raises(ValueError):
            uniform_arrival_times(1.0, -2)


class TestZipfRangeQueries:
    def test_ranges_have_requested_size_and_bounds(self):
        queries = zipf_range_queries(DeterministicRNG(5), 300, range_size=50.0)
        assert len(queries) == 300
        for low, high in queries:
            assert high - low == pytest.approx(50.0)
            assert 0.0 <= low
            assert high <= 1000.0

    def test_skew_concentrates_on_hot_buckets(self):
        queries = zipf_range_queries(
            DeterministicRNG(5), 2000, range_size=5.0, alpha=1.2, buckets=100
        )
        # bucket 0 is the hottest: far more than the uniform share (1/100)
        hot = sum(1 for low, _high in queries if low < 10.0)
        assert hot > 200

    def test_invalid_arguments(self):
        rng = DeterministicRNG(1)
        with pytest.raises(ValueError):
            zipf_range_queries(rng, -1, 10.0)
        with pytest.raises(ValueError):
            zipf_range_queries(rng, 5, 2000.0)
        with pytest.raises(ValueError):
            zipf_range_queries(rng, 5, 10.0, buckets=0)

    def test_single_bucket_degenerates_to_uniform_positions(self):
        # With one Zipf rank every draw must return rank 1: the whole
        # attribute interval is the single (hottest) bucket.
        rng = DeterministicRNG(11)
        assert all(rng.zipf(1.1, 1) == 1 for _ in range(50))
        queries = zipf_range_queries(DeterministicRNG(11), 200, range_size=30.0, buckets=1)
        assert len(queries) == 200
        for low, high in queries:
            assert high - low == pytest.approx(30.0)
            assert 0.0 <= low and high <= 1000.0
        # positions must still spread over the interval, not pile on one spot
        assert len({round(low, 6) for low, _high in queries}) > 100


class TestChurnSchedules:
    def test_periodic_schedule_alternates_joins_and_leaves(self):
        schedule = periodic_churn(period=10.0, until=45.0, joins=2, leaves=3)
        assert len(schedule) == 8  # 4 instants x (join + leave)
        assert schedule.total_joins() == 8
        assert schedule.total_leaves() == 12
        times = [event.time for event in schedule]
        assert times == sorted(times)

    def test_events_validated(self):
        with pytest.raises(ValueError):
            ChurnEvent(time=-1.0, kind="join")
        with pytest.raises(ValueError):
            ChurnEvent(time=0.0, kind="rejoin")
        with pytest.raises(ValueError):
            ChurnEvent(time=0.0, kind="leave", count=0)

    def test_schedule_add_keeps_sorted(self):
        schedule = ChurnSchedule()
        schedule.add(ChurnEvent(time=5.0, kind="join"))
        schedule.add(ChurnEvent(time=1.0, kind="leave"))
        assert [event.time for event in schedule] == [1.0, 5.0]

    def test_zero_count_sides_omitted(self):
        schedule = periodic_churn(period=5.0, until=20.0, joins=1, leaves=0)
        assert schedule.total_leaves() == 0
        assert all(event.kind == "join" for event in schedule)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            periodic_churn(period=0.0, until=10.0)

    def test_empty_schedule_edge_cases(self):
        # A window shorter than one period produces no events at all.
        empty = periodic_churn(period=10.0, until=5.0)
        assert len(empty) == 0
        assert empty.total_joins() == 0
        assert empty.total_leaves() == 0
        assert list(empty) == []
        # Zero join/leave counts likewise produce an empty schedule.
        assert len(periodic_churn(period=1.0, until=10.0, joins=0, leaves=0)) == 0

    def test_engine_accepts_empty_churn_schedule(self):
        from repro.core.armada import ArmadaSystem
        from repro.engine import QueryEngine, QueryJob

        system = ArmadaSystem(num_peers=32, seed=3, attribute_interval=(0.0, 1000.0))
        system.insert_many([float(v) for v in range(0, 1000, 100)])
        engine = QueryEngine(system)
        engine.schedule_churn(periodic_churn(period=10.0, until=5.0))  # no events
        report = engine.run_open_loop([QueryJob(arrival=0.0, low=100.0, high=300.0)])
        assert report.queries == 1
        assert system.size == 32  # membership untouched by the empty schedule
