"""Unit tests for the perf-regression gate (:mod:`repro.benchgate`).

The acceptance bar from the binary-hot-path PR: ``repro bench --check``
must exit non-zero when a gated metric (here: an artificially injected
30% ``events_per_sec`` drop) regresses beyond the threshold, and the
cpu_count-aware skip must keep wall-clock rates from failing CI on a
differently-sized machine.
"""

from __future__ import annotations

import io
import json
import os

from repro.benchgate import (
    DEFAULT_THRESHOLD,
    append_history,
    compare,
    format_table,
    read_bench_dir,
    run_gate,
)

CPUS = os.cpu_count() or 1


def write_bench(directory, name, metrics, cpu_count=CPUS):
    payload = {
        "name": name,
        "python": "3.11.0",
        "platform": "test",
        "cpu_count": cpu_count,
        "git_sha": "deadbeef",
        "timestamp": "2026-01-01T00:00:00+0000",
        "metrics": metrics,
    }
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


class TestCompare:
    def test_thirty_percent_rate_drop_regresses(self):
        baselines = {"load": {"cpu_count": CPUS, "metrics": {"events_per_sec": 1000.0}}}
        currents = {"load": {"cpu_count": CPUS, "metrics": {"events_per_sec": 700.0}}}
        deltas = compare(baselines, currents)
        delta = next(d for d in deltas if d.metric == "events_per_sec")
        assert delta.status == "regressed"
        assert abs(delta.change - (-0.30)) < 1e-9

    def test_drop_within_threshold_is_ok(self):
        baselines = {"load": {"cpu_count": CPUS, "metrics": {"events_per_sec": 1000.0}}}
        currents = {"load": {"metrics": {"events_per_sec": 800.0}}}
        deltas = compare(baselines, currents)
        delta = next(d for d in deltas if d.metric == "events_per_sec")
        assert delta.status == "ok"

    def test_rate_skipped_on_cpu_count_mismatch(self):
        baselines = {"load": {"cpu_count": CPUS + 1, "metrics": {"events_per_sec": 1000.0}}}
        currents = {"load": {"metrics": {"events_per_sec": 10.0}}}  # huge drop
        deltas = compare(baselines, currents)
        delta = next(d for d in deltas if d.metric == "events_per_sec")
        assert delta.status == "skipped-cpu"

    def test_ratio_gated_regardless_of_cpu_count(self):
        baselines = {
            "runtime": {"cpu_count": CPUS + 7, "metrics": {"success_ratio": 1.0}}
        }
        currents = {"runtime": {"metrics": {"success_ratio": 0.5}}}
        deltas = compare(baselines, currents)
        delta = next(d for d in deltas if d.metric == "success_ratio")
        assert delta.status == "regressed"

    def test_improvement_is_ok_and_missing_is_reported(self):
        baselines = {"load": {"cpu_count": CPUS, "metrics": {"events_per_sec": 100.0}}}
        currents = {
            "load": {"metrics": {"events_per_sec": 500.0, "queries_per_sec": 9.0}}
        }
        deltas = {d.metric: d for d in compare(baselines, currents)}
        assert deltas["events_per_sec"].status == "ok"
        assert deltas["queries_per_sec"].status == "missing"  # no baseline

    def test_table_renders_every_status(self):
        baselines = {"load": {"cpu_count": CPUS, "metrics": {"events_per_sec": 1000.0}}}
        currents = {"load": {"metrics": {"events_per_sec": 700.0}}}
        table = format_table(compare(baselines, currents))
        assert "REGRESSED" in table
        assert "events_per_sec" in table


class TestRunGate:
    """The full flow, as ``repro bench --check --skip-run`` drives it."""

    def run(self, tmp_path, baseline_metrics, current_metrics, **kwargs):
        baseline_dir = tmp_path / "baseline"
        bench_dir = tmp_path / "current"
        baseline_dir.mkdir()
        bench_dir.mkdir()
        write_bench(str(baseline_dir), "load", baseline_metrics)
        write_bench(str(bench_dir), "load", current_metrics)
        out = io.StringIO()
        code = run_gate(
            repo_root=str(tmp_path),  # not a git repo: baseline_dir rules
            bench_dir=str(bench_dir),
            baseline_dir=str(baseline_dir),
            skip_run=True,
            out=out,
            **kwargs,
        )
        return code, out.getvalue()

    def test_injected_30pct_regression_fails_the_check(self, tmp_path):
        code, output = self.run(
            tmp_path,
            {"events_per_sec": 1000.0, "queries_per_sec": 50.0},
            {"events_per_sec": 700.0, "queries_per_sec": 50.0},
            check=True,
        )
        assert code == 1
        assert "REGRESSED" in output
        assert "1 gated metric(s) regressed" in output

    def test_same_regression_without_check_still_exits_zero(self, tmp_path):
        code, output = self.run(
            tmp_path,
            {"events_per_sec": 1000.0},
            {"events_per_sec": 700.0},
            check=False,
        )
        assert code == 0
        assert "REGRESSED" in output  # reported, just not enforced

    def test_healthy_numbers_pass_the_check(self, tmp_path):
        code, output = self.run(
            tmp_path,
            {"events_per_sec": 1000.0, "queries_per_sec": 50.0},
            {"events_per_sec": 990.0, "queries_per_sec": 51.0},
            check=True,
        )
        assert code == 0
        assert f"no gated metric regressed by more than {DEFAULT_THRESHOLD:.0%}" in output

    def test_no_artifacts_is_a_failure(self, tmp_path):
        bench_dir = tmp_path / "empty"
        bench_dir.mkdir()
        out = io.StringIO()
        code = run_gate(
            repo_root=str(tmp_path),
            bench_dir=str(bench_dir),
            skip_run=True,
            out=out,
        )
        assert code == 1
        assert "no BENCH_*.json artifacts" in out.getvalue()

    def test_gate_appends_environment_stamped_history(self, tmp_path):
        self.run(tmp_path, {"events_per_sec": 100.0}, {"events_per_sec": 100.0})
        history = tmp_path / "current" / "history.jsonl"
        lines = history.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["cpu_count"] == CPUS
        assert record["benchmarks"]["load"]["events_per_sec"] == 100.0
        assert "timestamp" in record and "python" in record

    def test_cli_wrapper_fails_on_injected_regression(self, tmp_path):
        """End to end through the actual CLI entry point: ``repro bench
        --check`` must exit non-zero on the injected 30% drop."""
        import repro.cli as cli

        baseline_dir = tmp_path / "baseline"
        bench_dir = tmp_path / "current"
        baseline_dir.mkdir()
        bench_dir.mkdir()
        write_bench(str(baseline_dir), "load", {"events_per_sec": 1000.0})
        write_bench(str(bench_dir), "load", {"events_per_sec": 700.0})
        code = cli.main(
            [
                "bench",
                "--check",
                "--skip-run",
                "--bench-dir",
                str(bench_dir),
                "--baseline-dir",
                str(baseline_dir),
            ]
        )
        assert code == 1


class TestReadBenchDir:
    def test_ignores_malformed_and_foreign_files(self, tmp_path):
        write_bench(str(tmp_path), "load", {"events_per_sec": 1.0})
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        (tmp_path / "BENCH_shapeless.json").write_text('{"metrics": 3}')
        (tmp_path / "notes.txt").write_text("hello")
        payloads = read_bench_dir(str(tmp_path))
        assert sorted(payloads) == ["load"]

    def test_append_history_accumulates(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        currents = {"load": {"metrics": {"events_per_sec": 5.0}}}
        append_history(path, currents)
        append_history(path, currents)
        lines = open(path).read().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["benchmarks"]["load"] for line in lines)
