"""Unit tests for the binary frame codec (:mod:`repro.runtime.binframe`).

The property suite (``tests/property/test_prop_binframe.py``) hammers the
JSON-identity contract with random structures; these tests pin the exact
wire bytes and the error edges — tag choices, the magic byte, truncation,
bigint ext payloads, and the deliberate rejections that keep a binary body
from ever decoding to something JSON would have spelled differently.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime.binframe import (
    BINARY_MAGIC,
    BinaryCodecError,
    decode_binary,
    encode_binary,
)


def round_trip(value):
    return decode_binary(encode_binary(value))


class TestWireBytes:
    """Pin the msgpack-compatible tag layout so it can never drift."""

    def test_magic_byte_leads_every_body(self):
        assert encode_binary(None)[0] == BINARY_MAGIC == 0xC1

    def test_scalars(self):
        assert encode_binary(None) == b"\xc1\xc0"
        assert encode_binary(True) == b"\xc1\xc3"
        assert encode_binary(False) == b"\xc1\xc2"
        assert encode_binary(0) == b"\xc1\x00"
        assert encode_binary(127) == b"\xc1\x7f"
        assert encode_binary(-1) == b"\xc1\xff"
        assert encode_binary(-32) == b"\xc1\xe0"

    def test_int64_and_float64_tags(self):
        assert encode_binary(128)[1] == 0xD3  # past the fixint range
        assert encode_binary(-33)[1] == 0xD3
        assert len(encode_binary(128)) == 1 + 1 + 8
        assert encode_binary(1.5)[1] == 0xCB
        assert len(encode_binary(1.5)) == 1 + 1 + 8

    def test_fixstr_and_str32(self):
        assert encode_binary("hi") == b"\xc1\xa2hi"
        long = "x" * 32  # one past the fixstr limit
        body = encode_binary(long)
        assert body[1] == 0xDB
        assert int.from_bytes(body[2:6], "big") == 32

    def test_fixmap_fixarray_and_32bit_forms(self):
        assert encode_binary([]) == b"\xc1\x90"
        assert encode_binary({}) == b"\xc1\x80"
        assert encode_binary({"a": 1}) == b"\xc1\x81\xa1a\x01"
        assert encode_binary(list(range(16)))[1] == 0xDD  # array32
        big_map = {str(i): i for i in range(16)}
        assert encode_binary(big_map)[1] == 0xDF  # map32

    def test_utf8_length_counts_bytes_not_codepoints(self):
        body = encode_binary("é" * 20)  # 40 UTF-8 bytes > 31
        assert body[1] == 0xDB
        assert round_trip("é" * 20) == "é" * 20


class TestValues:
    def test_bigints_ride_the_ext_payload(self):
        for value in (2**63, -(2**63) - 1, 2**80, -(2**200), 10**50):
            body = encode_binary(value)
            assert body[1] == 0xC7
            assert round_trip(value) == value

    def test_int64_boundaries(self):
        for value in (2**63 - 1, -(2**63), 2**31, -(2**31) - 1):
            assert round_trip(value) == value

    def test_tuples_become_lists_like_json(self):
        assert round_trip((1, 2, (3,))) == [1, 2, [3]]

    def test_subclasses_encode_as_their_base(self):
        class MyStr(str):
            pass

        class MyInt(int):
            pass

        class MyFloat(float):
            pass

        value = {"s": MyStr("abc"), "i": MyInt(7), "f": MyFloat(1.5), "b": True}
        assert round_trip(value) == {"s": "abc", "i": 7, "f": 1.5, "b": True}

    def test_bool_never_leaks_as_int(self):
        # bool is an int subclass; the codec must keep True/False distinct
        # from 1/0, exactly as json.dumps does.
        assert round_trip([True, 1, False, 0]) == [True, 1, False, 0]

    def test_dict_order_preserved(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(round_trip(value)) == ["z", "a", "m"]

    def test_realistic_reply_frame_matches_json_round_trip(self):
        frame = {
            "type": "reply",
            "rid": 42,
            "payload": {
                "ok": True,
                "result": {
                    "matches": [[123.0, "obj-1"], [456.5, "obj-2"]],
                    "destinations": ["0121", "10212"],
                    "messages": 17,
                    "complete": True,
                },
            },
        }
        assert round_trip(frame) == json.loads(json.dumps(frame))


class TestRejections:
    def test_non_string_dict_keys_rejected_not_coerced(self):
        # json.dumps would silently coerce 1 -> "1"; a binary body must
        # never decode to something JSON spelled differently, so: reject.
        with pytest.raises(BinaryCodecError, match="string dict keys"):
            encode_binary({1: "a"})

    def test_unencodable_types_rejected(self):
        with pytest.raises(BinaryCodecError, match="not encodable"):
            encode_binary({"blob": b"raw-bytes"})
        with pytest.raises(BinaryCodecError, match="not encodable"):
            encode_binary(object())

    def test_absurd_bigint_rejected(self):
        with pytest.raises(BinaryCodecError, match="too large"):
            encode_binary(1 << (8 * 0x1000))


class TestMalformedBodies:
    def test_missing_magic(self):
        with pytest.raises(BinaryCodecError, match="magic"):
            decode_binary(b"\x00")
        with pytest.raises(BinaryCodecError, match="magic"):
            decode_binary(b"")
        with pytest.raises(BinaryCodecError, match="magic"):
            decode_binary(b'{"type": "reply"}')  # a JSON body

    def test_truncated_bodies(self):
        whole = encode_binary({"key": [1.5, "value", 2**70]})
        for cut in range(2, len(whole)):
            with pytest.raises(BinaryCodecError):
                decode_binary(whole[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(BinaryCodecError, match="trailing garbage"):
            decode_binary(encode_binary({"a": 1}) + b"\x00")

    def test_unknown_tag_rejected(self):
        with pytest.raises(BinaryCodecError, match="unknown binary type tag"):
            decode_binary(b"\xc1\xc5")  # 0xC5 (msgpack bin16) unassigned here

    def test_unknown_ext_type_rejected(self):
        with pytest.raises(BinaryCodecError, match="unknown ext type"):
            decode_binary(b"\xc1\xc7\x02\x7f\x00\x01")

    def test_non_string_map_key_on_decode_rejected(self):
        # fixmap of one entry whose key is the int 5
        with pytest.raises(BinaryCodecError, match="key must be a string"):
            decode_binary(b"\xc1\x81\x05\x05")
