"""Unit tests for the core transport seam (SimTransport / AsyncioTransport)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.armada import ArmadaSystem
from repro.core.errors import QueryError
from repro.core.pira import PiraExecutor
from repro.core.transport import SimTransport
from repro.runtime.transport import AsyncioTransport
from repro.sim.network import Message, OverlayNetwork


class TestSimTransport:
    def test_delegates_to_overlay(self):
        overlay = OverlayNetwork()
        transport = SimTransport(overlay)
        assert transport.overlay is overlay
        assert transport.now == overlay.simulator.now

        class Node:
            node_id = "n1"

            def handle_message(self, network, message):
                pass

        node = Node()
        transport.register(node)
        assert transport.has_node("n1")
        assert "n1" in transport.node_ids()
        transport.send(Message(sender="n1", receiver="n1", kind="t"))
        assert overlay.metrics.counter_value("messages.total") == 1
        transport.unregister("n1")
        assert not transport.has_node("n1")

    def test_timer_handle_cancels(self):
        overlay = OverlayNetwork()
        transport = SimTransport(overlay)
        fired = []
        handle = transport.schedule_after(1.0, lambda: fired.append(True), label="t")
        handle.cancel()
        overlay.run()
        assert fired == []

    def test_default_executor_transport_is_sim(self):
        system = ArmadaSystem(num_peers=16, seed=5)
        assert isinstance(system.pira.transport, SimTransport)
        assert system.pira.transport.overlay is system.overlay

    def test_explicit_transport_equals_default(self):
        """The seam itself must not change any measurement."""
        baseline = ArmadaSystem(num_peers=64, seed=9)
        baseline.insert_many([float(v) for v in range(0, 1000, 40)])

        seamed = ArmadaSystem(num_peers=64, seed=9)
        seamed.insert_many([float(v) for v in range(0, 1000, 40)])
        explicit = PiraExecutor(
            seamed.network,
            seamed.single_namer,
            transport=SimTransport(seamed.overlay),
        )

        origin = sorted(baseline.network.peer_ids())[0]
        want = baseline.pira.execute(origin, 100.0, 300.0)
        got = explicit.execute(origin, 100.0, 300.0)
        assert got.destinations == want.destinations
        assert got.messages == want.messages
        assert got.delay_hops == want.delay_hops
        assert sorted(got.matching_values()) == sorted(want.matching_values())


class TestAsyncioTransport:
    def test_routes_and_membership(self):
        transport = AsyncioTransport()
        transport.assign("010", ("127.0.0.1", 1234))
        assert transport.has_node("010")
        assert transport.address_of("010") == ("127.0.0.1", 1234)
        assert list(transport.node_ids()) == ["010"]
        # register() is a no-op: reachability comes from announced addresses
        transport.register(object())
        assert list(transport.node_ids()) == ["010"]
        transport.unregister("010")
        assert not transport.has_node("010")

    def test_unrouted_send_degrades_to_drop(self):
        async def scenario():
            transport = AsyncioTransport()
            dropped = []
            message = Message(
                sender="a",
                receiver="missing",
                kind="pira",
                metadata={"on_drop": dropped.append},
            )
            transport.send(message)
            assert dropped == [message]
            assert transport.messages_dropped == 1
            assert transport.messages_sent == 0

        asyncio.run(scenario())

    def test_broken_link_reports_drops(self):
        async def scenario():
            # Bind a listener, close it, then send to its (now dead) port.
            server = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()

            transport = AsyncioTransport()
            transport.assign("peer", ("127.0.0.1", port))
            dropped = []
            transport.send(
                Message(sender="a", receiver="peer", kind="pira", metadata={"on_drop": dropped.append})
            )
            await asyncio.sleep(0.1)
            await transport.close()
            assert len(dropped) == 1

        asyncio.run(scenario())

    def test_negative_extra_transit_rejected(self):
        with pytest.raises(ValueError):
            AsyncioTransport(extra_transit=-1.0)

    def test_live_executor_refuses_sync_execute(self):
        system = ArmadaSystem(num_peers=8, seed=2)
        executor = PiraExecutor(
            system.network, system.single_namer, transport=AsyncioTransport()
        )
        assert executor.overlay is None
        with pytest.raises(QueryError):
            executor.execute("0", 1.0, 2.0)
