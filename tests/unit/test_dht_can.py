"""Unit tests for the CAN substrate."""

from __future__ import annotations

import pytest

from repro.dhts.can import CanNetwork, CanZone
from repro.sim.rng import DeterministicRNG


@pytest.fixture(scope="module")
def can() -> CanNetwork:
    return CanNetwork(150, DeterministicRNG(19).substream("can"), dimensions=2)


class TestZoneGeometry:
    def test_contains_half_open(self):
        zone = CanZone(zone_id=0, lows=(0.0, 0.0), highs=(0.5, 0.5))
        assert zone.contains((0.0, 0.0))
        assert zone.contains((0.49, 0.49))
        assert not zone.contains((0.5, 0.2))

    def test_contains_closed_at_global_boundary(self):
        zone = CanZone(zone_id=0, lows=(0.5, 0.5), highs=(1.0, 1.0))
        assert zone.contains((1.0, 1.0))

    def test_center(self):
        zone = CanZone(zone_id=0, lows=(0.0, 0.5), highs=(0.5, 1.0))
        assert zone.center() == (0.25, 0.75)

    def test_touches_requires_shared_face(self):
        left = CanZone(zone_id=0, lows=(0.0, 0.0), highs=(0.5, 1.0))
        right = CanZone(zone_id=1, lows=(0.5, 0.0), highs=(1.0, 1.0))
        assert left.touches(right)

    def test_corner_contact_is_not_touching(self):
        first = CanZone(zone_id=0, lows=(0.0, 0.0), highs=(0.5, 0.5))
        second = CanZone(zone_id=1, lows=(0.5, 0.5), highs=(1.0, 1.0))
        assert not first.touches(second)

    def test_disjoint_zones_do_not_touch(self):
        first = CanZone(zone_id=0, lows=(0.0, 0.0), highs=(0.25, 0.25))
        second = CanZone(zone_id=1, lows=(0.5, 0.5), highs=(1.0, 1.0))
        assert not first.touches(second)


class TestConstruction:
    def test_zone_count_matches_nodes(self, can):
        assert can.size == 150
        assert len(can.zones()) == 150

    def test_zones_partition_unit_square(self, can):
        total_area = sum(
            (zone.highs[0] - zone.lows[0]) * (zone.highs[1] - zone.lows[1]) for zone in can.zones()
        )
        assert total_area == pytest.approx(1.0)

    def test_every_point_has_exactly_one_zone(self, can):
        rng = DeterministicRNG(20)
        for _ in range(100):
            point = (rng.random(), rng.random())
            owners = [zone for zone in can.zones() if zone.contains(point)]
            assert len(owners) == 1
            assert can.zone_at(point).zone_id == owners[0].zone_id

    def test_neighbors_are_symmetric_and_touch(self, can):
        for zone in can.zones():
            for neighbor_id in zone.neighbors:
                neighbor = can.zone(neighbor_id)
                assert zone.zone_id in neighbor.neighbors
                assert zone.touches(neighbor)

    def test_neighbor_lists_are_complete(self, can):
        zones = can.zones()
        for zone in zones[:40]:
            for other in zones:
                if other.zone_id == zone.zone_id:
                    continue
                if zone.touches(other):
                    assert other.zone_id in zone.neighbors

    def test_average_degree_near_2d(self, can):
        assert 3.0 <= can.average_degree() <= 7.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CanNetwork(0, DeterministicRNG(1))
        with pytest.raises(ValueError):
            CanNetwork(4, DeterministicRNG(1), dimensions=0)


class TestRouting:
    def test_route_reaches_zone_owning_point(self, can):
        rng = DeterministicRNG(21)
        for _ in range(50):
            source = can.random_node(rng)
            point = can.random_key(rng)
            result = can.route(source, point)
            assert result.owner == can.zone_at(point).zone_id
            assert result.path[-1] == result.owner

    def test_route_from_owner_is_zero_hops(self, can):
        rng = DeterministicRNG(22)
        point = can.random_key(rng)
        owner = can.zone_at(point).zone_id
        assert can.route(owner, point).hops == 0

    def test_route_path_follows_neighbor_links(self, can):
        rng = DeterministicRNG(23)
        point = can.random_key(rng)
        result = can.route(can.random_node(rng), point)
        for current, nxt in zip(result.path, result.path[1:]):
            assert nxt in can.zone(current).neighbors

    def test_route_hops_scale_like_sqrt_n(self, can):
        rng = DeterministicRNG(24)
        hops = [can.route(can.random_node(rng), can.random_key(rng)).hops for _ in range(80)]
        average = sum(hops) / len(hops)
        assert average <= 3.0 * (can.size ** 0.5)

    def test_one_dimensional_can(self):
        can1d = CanNetwork(20, DeterministicRNG(25), dimensions=1)
        result = can1d.route(can1d.random_node(DeterministicRNG(26)), (0.73,))
        assert result.owner == can1d.zone_at((0.73,)).zone_id
