"""Unit tests for the Chord substrate."""

from __future__ import annotations

import math

import pytest

from repro.dhts.chord import ChordNetwork, chord_hash
from repro.sim.rng import DeterministicRNG


@pytest.fixture(scope="module")
def chord() -> ChordNetwork:
    return ChordNetwork(200, DeterministicRNG(13).substream("chord"))


class TestConstruction:
    def test_requested_size(self, chord):
        assert chord.size == 200
        assert len(chord.node_ids()) == 200

    def test_node_ids_unique_and_sorted(self, chord):
        ids = chord.node_ids()
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_too_small_network_rejected(self):
        with pytest.raises(ValueError):
            ChordNetwork(1, DeterministicRNG(1))

    def test_successor_predecessor_ring(self, chord):
        ids = chord.node_ids()
        for index, node_id in enumerate(ids):
            node = chord.node(node_id)
            assert node.successor == ids[(index + 1) % len(ids)]
            assert node.predecessor == ids[(index - 1) % len(ids)]

    def test_finger_table_size_and_targets(self, chord):
        node_id = chord.node_ids()[0]
        node = chord.node(node_id)
        assert len(node.fingers) == chord.bits
        for i, finger in enumerate(node.fingers):
            assert finger == chord.successor_of((node_id + (1 << i)) % chord.space)


class TestHashing:
    def test_chord_hash_deterministic_and_in_range(self):
        assert chord_hash("alice") == chord_hash("alice")
        assert chord_hash("alice") != chord_hash("bob")
        assert 0 <= chord_hash("alice", bits=16) < (1 << 16)


class TestOwnership:
    def test_owner_is_successor(self, chord):
        ids = chord.node_ids()
        key = (ids[10] + ids[11]) // 2
        if key != ids[10]:
            assert chord.owner(key) == ids[11]

    def test_owner_of_node_id_is_node(self, chord):
        for node_id in chord.node_ids()[:10]:
            assert chord.owner(node_id) == node_id

    def test_owner_wraps_around(self, chord):
        beyond_last = chord.node_ids()[-1] + 1
        if beyond_last < chord.space:
            assert chord.owner(beyond_last) == chord.node_ids()[0]


class TestRouting:
    def test_route_reaches_owner(self, chord):
        rng = DeterministicRNG(14)
        for _ in range(50):
            source = chord.random_node(rng)
            key = chord.random_key(rng)
            result = chord.route(source, key)
            assert result.owner == chord.owner(key)
            assert result.path[0] == source
            assert result.path[-1] == result.owner

    def test_route_to_own_key_is_zero_hops(self, chord):
        node_id = chord.node_ids()[5]
        assert chord.route(node_id, node_id).hops == 0

    def test_route_hops_are_logarithmic(self, chord):
        rng = DeterministicRNG(15)
        hops = [chord.route(chord.random_node(rng), chord.random_key(rng)).hops for _ in range(100)]
        average = sum(hops) / len(hops)
        assert average <= 2 * math.log2(chord.size)
        assert max(hops) <= 4 * math.log2(chord.size)

    def test_average_route_hops_helper(self, chord):
        average = chord.average_route_hops(DeterministicRNG(16), samples=50)
        assert 0 < average <= 2 * math.log2(chord.size)


class TestStorageAndScans:
    def test_put_get_roundtrip(self):
        chord = ChordNetwork(50, DeterministicRNG(17))
        key = chord_hash("object-1")
        owner = chord.put(key, "payload")
        assert owner == chord.owner(key)
        assert chord.get(key) == ["payload"]

    def test_nodes_covering_range_walks_successors(self, chord):
        ids = chord.node_ids()
        low_key, high_key = ids[20] + 1, ids[25]
        covering = chord.nodes_covering_range(low_key, high_key)
        assert covering[0] == chord.owner(low_key)
        assert covering[-1] == chord.owner(high_key)
        assert covering == ids[21:26]

    def test_nodes_covering_range_validates_order(self, chord):
        with pytest.raises(ValueError):
            chord.nodes_covering_range(10, 5)

    def test_nodes_covering_single_key(self, chord):
        key = chord.node_ids()[7]
        assert chord.nodes_covering_range(key, key) == [key]
