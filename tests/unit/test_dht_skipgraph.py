"""Unit tests for the Skip Graph substrate."""

from __future__ import annotations

import math

import pytest

from repro.dhts.skipgraph import SkipGraph
from repro.sim.rng import DeterministicRNG


@pytest.fixture(scope="module")
def skipgraph() -> SkipGraph:
    rng = DeterministicRNG(29)
    keys = [rng.uniform(0.0, 1000.0) for _ in range(180)]
    return SkipGraph(keys, rng.substream("membership"))


class TestConstruction:
    def test_size(self, skipgraph):
        assert skipgraph.size == 180

    def test_requires_two_keys(self):
        with pytest.raises(ValueError):
            SkipGraph([1.0], DeterministicRNG(1))

    def test_level_zero_is_sorted_doubly_linked_list(self, skipgraph):
        order = skipgraph.node_ids_in_key_order()
        for left_id, right_id in zip(order, order[1:]):
            left, right = skipgraph.node(left_id), skipgraph.node(right_id)
            assert left.key <= right.key
            assert left.links[0][1] == right_id
            assert right.links[0][0] == left_id

    def test_higher_levels_link_within_membership_groups(self, skipgraph):
        for node_id in skipgraph.node_ids_in_key_order()[:50]:
            node = skipgraph.node(node_id)
            for level in range(1, min(4, node.levels)):
                _left, right = node.links[level]
                if right is not None:
                    other = skipgraph.node(right)
                    assert other.membership[:level] == node.membership[:level]
                    assert other.key >= node.key

    def test_level_lists_thin_out(self, skipgraph):
        def linked_count(level):
            return sum(
                1
                for node_id in skipgraph.node_ids_in_key_order()
                if any(link is not None for link in skipgraph.node(node_id).links[level])
            )

        assert linked_count(3) <= linked_count(0)


class TestOwnership:
    def test_owner_is_greatest_key_at_most_value(self, skipgraph):
        order = skipgraph.node_ids_in_key_order()
        keys = [skipgraph.node(node_id).key for node_id in order]
        probe = (keys[50] + keys[51]) / 2
        assert skipgraph.owner(probe) == order[50]

    def test_owner_below_smallest_key(self, skipgraph):
        order = skipgraph.node_ids_in_key_order()
        smallest = skipgraph.node(order[0]).key
        assert skipgraph.owner(smallest - 1.0) == order[0]


class TestSearch:
    def test_route_reaches_owner(self, skipgraph):
        rng = DeterministicRNG(30)
        for _ in range(60):
            source = skipgraph.random_node(rng)
            key = skipgraph.random_key(rng)
            result = skipgraph.route(source, key)
            assert result.owner == skipgraph.owner(key)

    def test_route_hops_logarithmic(self, skipgraph):
        rng = DeterministicRNG(31)
        hops = [
            skipgraph.route(skipgraph.random_node(rng), skipgraph.random_key(rng)).hops
            for _ in range(80)
        ]
        assert sum(hops) / len(hops) <= 3 * math.log2(skipgraph.size)

    def test_route_to_own_key(self, skipgraph):
        node_id = skipgraph.node_ids_in_key_order()[10]
        key = skipgraph.node(node_id).key
        assert skipgraph.route(node_id, key).owner == node_id


class TestScans:
    def test_scan_right_collects_contiguous_nodes(self, skipgraph):
        order = skipgraph.node_ids_in_key_order()
        start = order[40]
        high_key = skipgraph.node(order[45]).key
        walk = skipgraph.scan_right(start, high_key)
        assert walk == order[40:46]

    def test_scan_right_stops_at_end(self, skipgraph):
        order = skipgraph.node_ids_in_key_order()
        walk = skipgraph.scan_right(order[-3], float("inf"))
        assert walk == order[-3:]

    def test_range_nodes_oracle_matches_scan(self, skipgraph):
        order = skipgraph.node_ids_in_key_order()
        low_key = skipgraph.node(order[30]).key
        high_key = skipgraph.node(order[37]).key
        oracle = skipgraph.range_nodes(low_key, high_key)
        start = skipgraph.owner(low_key)
        walk = skipgraph.scan_right(start, high_key)
        assert set(walk) == set(oracle)
