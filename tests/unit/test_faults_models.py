"""Unit tests for the fault models, injector and plan (`repro.faults`)."""

from __future__ import annotations

import pytest

from repro.faults import (
    Bisection,
    CrashRecover,
    CrashStop,
    Duplicate,
    ExtraDelay,
    FaultInjector,
    FaultPlan,
    GilbertLoss,
    IidLoss,
)
from repro.sim.network import Message, OverlayNetwork


class Recorder:
    """A trivial overlay node that records its deliveries."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.received = []

    def handle_message(self, network, message) -> None:
        self.received.append(message)


def build_overlay(n: int = 10):
    overlay = OverlayNetwork()
    nodes = [Recorder(f"n{i}") for i in range(n)]
    for node in nodes:
        overlay.register(node)
    return overlay, nodes


def flood(overlay, nodes, count: int, query_id=None):
    """Send ``count`` messages around the ring and drain the simulator."""
    for index in range(count):
        sender = nodes[index % len(nodes)]
        receiver = nodes[(index + 1) % len(nodes)]
        overlay.send(
            Message(
                sender=sender.node_id,
                receiver=receiver.node_id,
                kind="test",
                query_id=query_id,
            )
        )
    overlay.run()


class TestModelValidation:
    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            IidLoss(probability=1.5)
        with pytest.raises(ValueError):
            Duplicate(probability=-0.1)
        with pytest.raises(ValueError):
            GilbertLoss(p_bad=2.0)
        with pytest.raises(ValueError):
            ExtraDelay(probability=0.5, mean_extra=0.0)
        with pytest.raises(ValueError):
            CrashStop(fraction=1.5)
        with pytest.raises(ValueError):
            CrashRecover(fraction=0.1, downtime=0.0)
        with pytest.raises(ValueError):
            Bisection(duration=0.0)


class TestIidLoss:
    def test_loss_rate_close_to_probability(self):
        overlay, nodes = build_overlay()
        FaultInjector(overlay, [IidLoss(0.3)], seed=11).install()
        flood(overlay, nodes, 2000)
        dropped = overlay.metrics.counter_value("messages.dropped.loss")
        assert 450 <= dropped <= 750  # 600 expected, generous band

    def test_same_seed_same_drops(self):
        def run(seed):
            overlay, nodes = build_overlay()
            FaultInjector(overlay, [IidLoss(0.2)], seed=seed).install()
            flood(overlay, nodes, 500)
            return overlay.metrics.counter_value("messages.dropped.loss")

        assert run(7) == run(7)
        assert run(7) != run(8) or run(7) != run(9)  # seeds actually matter


class TestGilbertLoss:
    def test_burstier_than_iid_at_equal_rate(self):
        """With loss_bad=1, drops arrive in runs: consecutive-drop pairs are
        far more common than under i.i.d. loss of the same overall rate."""
        def consecutive_pairs(model, seed):
            overlay, nodes = build_overlay()
            dropped_flags = []
            injector = FaultInjector(overlay, [model], seed=seed)
            injector.install()
            before = 0
            for index in range(2000):
                overlay.send(
                    Message(
                        sender=nodes[index % 10].node_id,
                        receiver=nodes[(index + 1) % 10].node_id,
                        kind="test",
                    )
                )
                after = overlay.metrics.counter_value("messages.dropped")
                dropped_flags.append(after > before)
                before = after
            overlay.run()
            pairs = sum(
                1 for a, b in zip(dropped_flags, dropped_flags[1:]) if a and b
            )
            rate = sum(dropped_flags) / len(dropped_flags)
            return pairs, rate

        gilbert_pairs, gilbert_rate = consecutive_pairs(
            GilbertLoss(p_bad=0.02, p_good=0.25), seed=3
        )
        iid_pairs, iid_rate = consecutive_pairs(IidLoss(gilbert_rate), seed=3)
        assert gilbert_pairs > 2 * max(1, iid_pairs)

    def test_mean_burst_length_about_inverse_p_good(self):
        overlay, nodes = build_overlay()
        FaultInjector(overlay, [GilbertLoss(p_bad=0.05, p_good=0.5)], seed=5).install()
        flood(overlay, nodes, 3000)
        dropped = overlay.metrics.counter_value("messages.dropped.burst-loss")
        assert dropped > 0


class TestExtraDelayAndDuplicate:
    def test_extra_delay_reorders(self):
        overlay, nodes = build_overlay(2)
        FaultInjector(overlay, [ExtraDelay(probability=0.5, mean_extra=5.0)], seed=2).install()
        for index in range(50):
            overlay.send(
                Message(
                    sender=nodes[0].node_id,
                    receiver=nodes[1].node_id,
                    kind="test",
                    payload=index,
                )
            )
        overlay.run()
        order = [message.payload for message in nodes[1].received]
        assert len(order) == 50
        assert order != sorted(order)  # delayed messages arrived late

    def test_duplicate_delivers_extra_copies(self):
        overlay, nodes = build_overlay(2)
        FaultInjector(overlay, [Duplicate(probability=1.0)], seed=2).install()
        for _ in range(10):
            overlay.send(
                Message(sender=nodes[0].node_id, receiver=nodes[1].node_id, kind="test")
            )
        overlay.run()
        assert len(nodes[1].received) == 20
        assert overlay.metrics.counter_value("messages.duplicated") == 10


class TestCrash:
    def test_crash_stop_blocks_sends_and_inflight(self):
        overlay, nodes = build_overlay(3)
        injector = FaultInjector(
            overlay, [CrashStop(peer_ids=[nodes[1].node_id], at=5.0)], seed=1
        )
        injector.install()
        # In flight across the crash instant: scheduled before, lands after.
        overlay.simulator.schedule_at(
            4.5,
            lambda: overlay.send(
                Message(sender=nodes[0].node_id, receiver=nodes[1].node_id, kind="test")
            ),
        )
        overlay.run()
        assert injector.is_down(nodes[1].node_id)
        assert nodes[1].received == []  # delivery at 5.5 was suppressed
        # Sends after the crash are dropped at send time.
        overlay.send(Message(sender=nodes[0].node_id, receiver=nodes[1].node_id, kind="test"))
        overlay.run()
        assert nodes[1].received == []

    def test_crash_fraction_samples_deterministically(self):
        def downs(seed):
            overlay, _nodes = build_overlay(20)
            injector = FaultInjector(overlay, [CrashStop(fraction=0.25)], seed=seed)
            injector.install()
            overlay.run(until=0.0)
            return sorted(injector.down_ids)

        assert len(downs(4)) == 5
        assert downs(4) == downs(4)

    def test_crash_recover_comes_back(self):
        overlay, nodes = build_overlay(3)
        injector = FaultInjector(
            overlay,
            [CrashRecover(peer_ids=[nodes[1].node_id], at=1.0, downtime=10.0)],
            seed=1,
        )
        injector.install()
        overlay.run(until=2.0)
        assert injector.is_down(nodes[1].node_id)
        overlay.run(until=12.0)
        assert not injector.is_down(nodes[1].node_id)
        overlay.send(Message(sender=nodes[0].node_id, receiver=nodes[1].node_id, kind="test"))
        overlay.run()
        assert len(nodes[1].received) == 1

    def test_live_ids_excludes_down(self):
        overlay, nodes = build_overlay(4)
        injector = FaultInjector(overlay, [CrashStop(peer_ids=[nodes[0].node_id])], seed=1)
        injector.install()
        overlay.run(until=0.0)
        assert nodes[0].node_id not in injector.live_ids()
        assert len(injector.live_ids()) == 3


class TestCrashRecoverStorage:
    """Regression: recovery is a *power-fail and replay*, not a nap.

    ``CrashRecover`` used to bring a peer back with its in-memory dict
    intact — state that a real killed process could never keep.  The model
    now routes through :meth:`FaultInjector.power_fail` /
    :meth:`FaultInjector.replay`, so a memory-backed peer recovers empty
    and a WAL-backed peer recovers exactly its synced writes.
    """

    def build_peer_overlay(self, backend=None):
        from repro.fissione.peer import FissionePeer

        overlay = OverlayNetwork()
        peer = (
            FissionePeer(peer_id="0101")
            if backend is None
            else FissionePeer(peer_id="0101", backend=backend)
        )
        peer.backend.put("010101", key=1.0, value=10.0)
        peer.backend.sync()
        overlay.register(peer)
        return overlay, peer

    def run_crash_recover(self, overlay, peer):
        injector = FaultInjector(
            overlay,
            [CrashRecover(peer_ids=[peer.peer_id], at=1.0, downtime=5.0)],
            seed=1,
        )
        injector.install()
        overlay.run(until=2.0)
        assert injector.is_down(peer.peer_id)
        assert peer.object_count() == 0  # volatile state died with the crash
        overlay.run(until=10.0)
        assert not injector.is_down(peer.peer_id)
        return injector

    def test_memory_backed_peer_recovers_empty(self):
        overlay, peer = self.build_peer_overlay()
        self.run_crash_recover(overlay, peer)
        assert peer.object_count() == 0  # no resurrection of lost state
        assert peer.get("010101") == []

    def test_wal_backed_peer_recovers_synced_writes(self, tmp_path):
        from repro.storage import open_store

        backend = open_store("wal", str(tmp_path / "peer.wal"))
        overlay, peer = self.build_peer_overlay(backend)
        digest = peer.backend.digest()
        self.run_crash_recover(overlay, peer)
        assert peer.object_count() == 1
        assert peer.backend.digest() == digest
        assert [s.value for s in peer.get("010101")] == [10.0]
        backend.close()

    def test_injector_power_fail_and_replay_hooks(self):
        """The injector-level primitives drive the node hooks directly."""
        overlay, peer = self.build_peer_overlay()
        injector = FaultInjector(overlay, [], seed=1)
        injector.install()
        injector.power_fail(peer.peer_id)
        assert injector.is_down(peer.peer_id)
        assert peer.object_count() == 0
        assert injector.replay(peer.peer_id) == 0  # memory: nothing to replay
        assert not injector.is_down(peer.peer_id)

    def test_hooks_optional_for_plain_nodes(self):
        """Recorder nodes (no storage hooks) still crash and recover."""
        overlay, nodes = build_overlay(3)
        injector = FaultInjector(overlay, [], seed=1)
        injector.install()
        injector.power_fail(nodes[1].node_id)
        assert injector.is_down(nodes[1].node_id)
        assert injector.replay(nodes[1].node_id) == 0
        assert not injector.is_down(nodes[1].node_id)


class TestBisection:
    def test_cross_cut_dropped_within_side_delivered(self):
        overlay, nodes = build_overlay(10)
        model = Bisection(at=0.0, duration=100.0)
        FaultInjector(overlay, [model], seed=6).install()
        overlay.run(until=0.0)
        side_a = model._side_a
        assert len(side_a) == 5
        a = next(n for n in nodes if n.node_id in side_a)
        b = next(n for n in nodes if n.node_id not in side_a)
        a2 = next(n for n in nodes if n.node_id in side_a and n is not a)
        overlay.send(Message(sender=a.node_id, receiver=b.node_id, kind="test"))
        overlay.send(Message(sender=a.node_id, receiver=a2.node_id, kind="test"))
        overlay.run(until=50.0)
        assert b.received == []
        assert len(a2.received) == 1

    def test_partition_heals(self):
        overlay, nodes = build_overlay(10)
        model = Bisection(at=0.0, duration=10.0)
        FaultInjector(overlay, [model], seed=6).install()
        overlay.run(until=20.0)
        flood(overlay, nodes, 40)
        assert sum(len(n.received) for n in nodes) == 40


class TestComposition:
    def test_composed_plan_is_deterministic(self):
        """Crash + loss composed: two identically-seeded runs drop the same
        number of messages (all models are consulted for every message, so
        neither model's stream depends on the other's verdicts)."""
        def run():
            overlay, nodes = build_overlay(4)
            FaultInjector(
                overlay, [CrashStop(peer_ids=[nodes[1].node_id]), IidLoss(0.5)], seed=9
            ).install()
            overlay.run(until=0.0)
            flood(overlay, nodes, 100)
            return overlay.metrics.counter_value("messages.dropped")

        first = run()
        assert first > 25  # crashes plus ~half the rest
        assert run() == first


class TestFaultPlan:
    def test_empty_plan_installs_nothing(self):
        overlay, _nodes = build_overlay()
        assert FaultPlan.empty().install(overlay) is None
        assert overlay.fault_injector is None

    def test_non_empty_plan_installs_injector(self):
        overlay, _nodes = build_overlay()
        injector = FaultPlan([IidLoss(0.1)], seed=3).install(overlay)
        assert overlay.fault_injector is injector

    def test_describe(self):
        plan = FaultPlan([CrashStop(fraction=0.1, at=2.0), IidLoss(0.05)], seed=4)
        text = plan.describe()
        assert "crash(fraction=0.1, at=2.0)" in text
        assert "loss(p=0.05)" in text
        assert "[seed 4]" in text
        assert FaultPlan.empty().describe() == "no faults"

    def test_add_is_fluent(self):
        plan = FaultPlan.empty().add(IidLoss(0.1)).add(Duplicate(0.2))
        assert len(plan.models) == 2
        assert not plan.is_empty()

    def test_plan_reuse_resets_model_runtime_state(self):
        """Installing the same plan on a fresh overlay must not carry an
        active partition (or a Gilbert burst) over from the previous run."""
        plan = FaultPlan([Bisection(at=5.0, duration=100.0)], seed=6)

        overlay_a, nodes_a = build_overlay(10)
        plan.install(overlay_a)
        overlay_a.run(until=10.0)  # partition is now active on overlay A
        assert plan.models[0]._active

        overlay_b, nodes_b = build_overlay(10)
        plan.install(overlay_b)
        assert not plan.models[0]._active  # reset at bind time
        # Before t=5 on overlay B nothing may be dropped.
        flood(overlay_b, nodes_b, 40)
        assert overlay_b.metrics.counter_value("messages.dropped") == 0


class TestQueryDropLedger:
    def test_drops_counted_per_query_without_callback(self):
        """Satellite: a lost message is charged to its query id even when the
        sender installed no ``on_drop`` callback."""
        overlay, nodes = build_overlay(3)
        overlay.set_drop_filter(lambda message: True)
        overlay.send(
            Message(sender=nodes[0].node_id, receiver=nodes[1].node_id, kind="q", query_id=7)
        )
        overlay.send(
            Message(sender=nodes[0].node_id, receiver=nodes[2].node_id, kind="q", query_id=7)
        )
        overlay.set_drop_filter(None)
        assert overlay.drops_for_query("q", 7) == 2
        assert overlay.drops_for_query("q", 8) == 0
        assert overlay.total_query_drops == 2

    def test_undeliverable_also_counted(self):
        overlay, nodes = build_overlay(3)
        overlay.send(
            Message(sender=nodes[0].node_id, receiver=nodes[1].node_id, kind="q", query_id=1)
        )
        overlay.unregister(nodes[1].node_id)
        overlay.run()
        assert overlay.drops_for_query("q", 1) == 1
