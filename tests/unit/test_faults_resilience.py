"""Unit tests for the resilience layer: per-hop timeouts with bounded
retries, sibling rerouting around dead hops, partial-result accounting and
the engine's deadline enforcement."""

from __future__ import annotations

import pytest

from repro.core.armada import ArmadaSystem
from repro.engine import QueryEngine, QueryJob
from repro.faults import CrashStop, FaultInjector, FaultPlan, IidLoss, ResiliencePolicy
from repro.faults.resilience import ResilienceStats, default_deadline
from repro.sim.rng import DeterministicRNG
from repro.workloads.values import uniform_values

LOW, HIGH = 100.0, 300.0


def build_system(num_peers: int = 150, seed: int = 88) -> ArmadaSystem:
    system = ArmadaSystem(num_peers=num_peers, seed=seed, attribute_interval=(0.0, 1000.0))
    values = uniform_values(DeterministicRNG(seed).substream("values"), 800, 0.0, 1000.0)
    system.insert_many(values)
    return system


class TestPolicyValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(per_hop_timeout=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(detour_hop_penalty=-1)

    def test_attempts_per_hop(self):
        assert ResiliencePolicy(max_retries=2).attempts_per_hop == 3

    def test_stats_ledger(self):
        stats = ResilienceStats(drops=2, retries=1)
        assert not stats.clean
        assert ResilienceStats().clean
        merged = ResilienceStats()
        merged.merge(stats)
        merged.merge(ResilienceStats(deadline_expired=True))
        assert merged.drops == 2 and merged.retries == 1 and merged.deadline_expired
        payload = merged.as_dict()
        assert payload["deadline_expired"] == 1
        assert all(isinstance(value, int) for value in payload.values())

    def test_default_deadline_scales_with_retry_budget(self):
        policy = ResiliencePolicy(per_hop_timeout=4.0, max_retries=2)
        assert default_deadline(policy, 8.0) > default_deadline(None, 8.0)


class TestTimeoutAndRetry:
    def test_transient_loss_recovered_by_retry(self):
        """Drop the first copy of every forwarding message: with retries the
        query still reaches every ground-truth destination, at higher
        latency and message cost."""
        system = build_system()
        reference = system.range_query(LOW, HIGH, origin=system.network.peer_ids()[0])

        system2 = build_system()
        system2.set_resilience(ResiliencePolicy(per_hop_timeout=3.0, max_retries=2))
        seen = set()

        def drop_first_copy(message):
            key = (message.query_id, message.metadata.get("send"))
            if key in seen:
                return False
            seen.add(key)
            return True

        system2.overlay.set_drop_filter(drop_first_copy)
        degraded = system2.range_query(LOW, HIGH, origin=system2.network.peer_ids()[0])
        system2.overlay.set_drop_filter(None)

        assert degraded.complete
        assert degraded.destinations == reference.destinations
        assert degraded.resilience.retries > 0
        assert degraded.resilience.timeouts >= degraded.resilience.retries
        assert degraded.messages > reference.messages

    def test_unrecoverable_loss_reports_partial_not_hang(self):
        """Dropping everything: the query must terminate (no hang) and
        report itself incomplete with lost subtrees."""
        system = build_system()
        system.set_resilience(
            ResiliencePolicy(per_hop_timeout=2.0, max_retries=1, reroute=False)
        )
        system.overlay.set_drop_filter(lambda message: True)
        result = system.range_query(LOW, HIGH)
        system.overlay.set_drop_filter(None)
        assert system.pira.active_queries == 0
        assert not result.complete
        assert result.resilience.subtrees_lost > 0
        assert result.resilience.retries > 0
        assert result.destination_count <= 1

    def test_retry_count_bounded(self):
        system = build_system(num_peers=80)
        policy = ResiliencePolicy(per_hop_timeout=2.0, max_retries=3, reroute=False)
        system.set_resilience(policy)
        system.overlay.set_drop_filter(lambda message: True)
        result = system.range_query(LOW, HIGH)
        system.overlay.set_drop_filter(None)
        # Initial fan-out sends F messages; every logical send is attempted
        # at most attempts_per_hop times and nothing is ever processed, so
        # no second-level sends exist.
        fanout = len({step[1] for step in result.forwarding_steps})
        assert result.messages <= fanout * policy.attempts_per_hop

    def test_no_policy_means_no_timers_or_retries(self):
        system = build_system(num_peers=80)
        system.overlay.set_drop_filter(lambda message: message.hop >= 2)
        result = system.range_query(LOW, HIGH)
        system.overlay.set_drop_filter(None)
        assert result.resilience.retries == 0
        assert result.resilience.timeouts == 0
        assert result.resilience.drops > 0
        assert result.resilience.subtrees_lost == result.resilience.drops
        assert not result.complete


class TestSiblingReroute:
    def crash_relay(self, system):
        """Crash a relay: a forwarder that is neither a destination nor the
        origin (the origin reappears at deeper FRT levels, so it must be
        excluded explicitly — crashing it would kill the whole query)."""
        origin = system.network.peer_ids()[0]
        reference = system.range_query(LOW, HIGH, origin=origin)
        relays = {
            receiver
            for _sender, receiver, _hop in reference.forwarding_steps
            if receiver not in reference.destinations and receiver != origin
        }
        assert relays, "test topology must have at least one pure relay"
        victim = sorted(relays)[0]
        return reference, victim

    def test_reroute_recovers_subtree_behind_dead_relay(self):
        probe = build_system()
        reference, victim = self.crash_relay(probe)

        system = build_system()
        system.set_resilience(ResiliencePolicy(per_hop_timeout=2.0, max_retries=1, reroute=True))
        FaultInjector(system.overlay, [CrashStop(peer_ids=[victim], at=0.0)], seed=1).install()
        system.overlay.run(until=0.0)
        recovered = system.range_query(LOW, HIGH, origin=system.network.peer_ids()[0])

        # Every live ground-truth destination is reached despite the dead
        # relay; the detour cost shows up in reroutes and extra hops.
        assert set(recovered.destinations) == set(reference.destinations)
        assert recovered.resilience.reroutes > 0
        assert recovered.resilience.recovered_destinations > 0
        assert recovered.delay_hops >= reference.delay_hops

    def test_without_reroute_subtree_stays_lost(self):
        probe = build_system()
        reference, victim = self.crash_relay(probe)

        system = build_system()
        system.set_resilience(ResiliencePolicy(per_hop_timeout=2.0, max_retries=1, reroute=False))
        FaultInjector(system.overlay, [CrashStop(peer_ids=[victim], at=0.0)], seed=1).install()
        system.overlay.run(until=0.0)
        degraded = system.range_query(LOW, HIGH, origin=system.network.peer_ids()[0])

        assert set(degraded.destinations) < set(reference.destinations)
        assert degraded.resilience.subtrees_lost > 0
        assert not degraded.complete


class TestDuplicationSafety:
    def test_duplicates_never_corrupt_completion(self):
        from repro.faults import Duplicate

        system = build_system()
        system.set_resilience(ResiliencePolicy())
        FaultPlan([Duplicate(probability=1.0)], seed=3).install(system.overlay)
        reference = build_system().range_query(LOW, HIGH, origin=system.network.peer_ids()[0])
        result = system.range_query(LOW, HIGH, origin=system.network.peer_ids()[0])
        assert system.pira.active_queries == 0
        assert result.complete
        assert result.destinations == reference.destinations
        assert sorted(map(str, result.matching_values())) == sorted(
            map(str, reference.matching_values())
        )


class TestExecutorCancel:
    def test_cancel_fires_callback_with_partial_result(self):
        system = build_system()
        done = []
        result = system.pira.start(
            system.network.peer_ids()[0], LOW, HIGH, on_complete=done.append
        )
        assert system.pira.is_active(result.query_id)
        assert system.pira.cancel(result.query_id) is True
        assert done and done[0] is result
        assert result.failed
        assert not result.complete
        assert system.pira.active_queries == 0
        # Cancelling again (or cancelling the unknown) is a no-op.
        assert system.pira.cancel(result.query_id) is False
        system.overlay.run()  # late deliveries for the dead query are ignored


class TestEngineDeadline:
    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            QueryEngine(build_system(num_peers=80), deadline=0.0)

    def test_doomed_queries_fail_at_deadline_instead_of_leaking(self):
        system = build_system()
        system.set_resilience(ResiliencePolicy(per_hop_timeout=5.0, max_retries=3))
        system.overlay.set_drop_filter(lambda message: True)
        engine = QueryEngine(system, deadline=6.0)
        report = engine.run_open_loop(
            [QueryJob(arrival=float(index), low=LOW, high=HIGH) for index in range(5)]
        )
        system.overlay.set_drop_filter(None)
        assert report.queries == 5
        assert report.failed == 5
        assert report.stalled == 0
        assert all(record.status == "deadline" for record in report.completed)
        # Deadline fired before the retry budget (3+1 attempts × 5 units)
        # would have drained naturally.
        assert all(record.latency <= 6.0 for record in report.completed)
        assert report.success_ratio == 0.0

    def test_healthy_queries_unaffected_by_deadline(self):
        system = build_system()
        engine = QueryEngine(system, deadline=500.0)
        report = engine.run_open_loop(
            [QueryJob(arrival=0.0, low=LOW, high=HIGH) for _ in range(10)]
        )
        assert report.queries == 10
        assert report.failed == 0
        assert report.succeeded == 10
        assert all(record.status == "ok" for record in report.completed)


class TestEngineReportColumns:
    def test_dropped_column_surfaces_loss_without_faults(self):
        """Satellite: even with no fault plan, churn-induced drops show up
        in the engine report instead of silently shrinking results."""
        system = build_system()
        engine = QueryEngine(system)
        jobs = [QueryJob(arrival=float(i) * 2.0, low=LOW, high=HIGH) for i in range(20)]
        engine.submit_many(jobs)
        # Remove peers mid-workload so some in-flight receivers vanish.
        system.overlay.simulator.schedule_at(3.0, lambda: system.remove_peers(60))
        report = engine.run()
        assert report.queries == 20
        assert report.stalled == 0
        assert report.dropped > 0
        summary = report.as_dict()
        for key in ("succeeded", "failed", "stalled", "dropped", "retries", "reroutes"):
            assert key in summary
            assert isinstance(summary[key], int)
        assert "success ratio" in report.format()

    def test_iid_loss_with_policy_keeps_success_high(self):
        system = build_system()
        system.set_resilience(ResiliencePolicy(per_hop_timeout=3.0, max_retries=3))
        FaultPlan([IidLoss(0.05)], seed=11).install(system.overlay)
        engine = QueryEngine(system, deadline=200.0)
        report = engine.run_open_loop(
            [QueryJob(arrival=float(i), low=LOW, high=HIGH) for i in range(30)]
        )
        assert report.queries == 30
        assert report.stalled == 0
        assert report.success_ratio >= 0.8
        assert report.resilience.retries > 0
