"""Unit tests for the Kautz_hash naming algorithm."""

from __future__ import annotations

import pytest

from repro.fissione.naming import kautz_hash
from repro.kautz import strings as ks


class TestKautzHash:
    def test_produces_valid_kautz_string(self):
        for name in ("alice", "bob", "file.txt", ""):
            object_id = kautz_hash(name, length=32)
            assert len(object_id) == 32
            assert ks.is_kautz_string(object_id, base=2)

    def test_deterministic(self):
        assert kautz_hash("alice", length=40) == kautz_hash("alice", length=40)

    def test_different_names_differ(self):
        assert kautz_hash("alice", length=40) != kautz_hash("bob", length=40)

    def test_long_ids_supported(self):
        object_id = kautz_hash("alice", length=100)
        assert len(object_id) == 100
        assert ks.is_kautz_string(object_id, base=2)

    def test_prefix_not_shared_by_construction(self):
        # Hashing is not order-preserving: consecutive names should not
        # systematically share long prefixes.
        ids = [kautz_hash(f"object-{index}", length=32) for index in range(20)]
        long_shared = sum(
            1
            for first, second in zip(ids, ids[1:])
            if ks.common_prefix(first, second) and len(ks.common_prefix(first, second)) > 10
        )
        assert long_shared == 0

    def test_distribution_over_first_symbol(self):
        counts = {"0": 0, "1": 0, "2": 0}
        for index in range(600):
            counts[kautz_hash(f"name-{index}", length=16)[0]] += 1
        for symbol, count in counts.items():
            assert count > 120, f"symbol {symbol} badly under-represented: {count}"

    def test_invalid_length_raises(self):
        with pytest.raises(ks.KautzStringError):
            kautz_hash("alice", length=0)

    def test_base3_supported(self):
        object_id = kautz_hash("alice", length=20, base=3)
        assert ks.is_kautz_string(object_id, base=3)
