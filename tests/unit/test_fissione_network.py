"""Unit tests for the FISSIONE overlay: membership, zones, neighbours."""

from __future__ import annotations

import pytest

from repro.fissione.network import FissioneError, FissioneNetwork
from repro.fissione.stabilize import check_topology
from repro.kautz import strings as ks
from repro.sim.rng import DeterministicRNG


def build(num_peers: int, seed: int = 1, object_id_length: int = 24) -> FissioneNetwork:
    return FissioneNetwork.build(
        num_peers, DeterministicRNG(seed).substream("topology"), object_id_length=object_id_length
    )


class TestSeeding:
    def test_seed_initial_creates_three_peers(self):
        network = FissioneNetwork(object_id_length=24)
        network.seed_initial()
        assert network.size == 3
        assert sorted(network.peer_ids()) == ["0", "1", "2"]

    def test_double_seed_raises(self):
        network = FissioneNetwork(object_id_length=24)
        network.seed_initial()
        with pytest.raises(FissioneError):
            network.seed_initial()

    def test_build_requires_minimum_size(self):
        with pytest.raises(FissioneError):
            build(2)

    def test_short_object_id_rejected(self):
        with pytest.raises(FissioneError):
            FissioneNetwork(object_id_length=2)


class TestCoverInvariants:
    @pytest.mark.parametrize("num_peers", [3, 4, 7, 16, 50, 120])
    def test_peer_ids_are_prefix_free_and_cover_namespace(self, num_peers):
        network = build(num_peers)
        report = check_topology(network)
        assert report.prefix_free
        assert report.covers_namespace
        assert report.peer_count == num_peers

    def test_neighborhood_invariant_holds(self):
        network = build(100)
        assert check_topology(network).neighborhood_violations == 0

    def test_id_lengths_within_paper_bounds(self):
        network = build(128)
        report = check_topology(network)
        assert report.within_paper_bounds()

    def test_all_peer_ids_are_valid_kautz_strings(self):
        network = build(40)
        for peer_id in network.peer_ids():
            assert ks.is_kautz_string(peer_id, base=2)


class TestOwnership:
    def test_every_key_has_exactly_one_owner(self):
        network = build(30, object_id_length=8)
        owners = {}
        for key in ks.kautz_strings_with_prefix("", 8, base=2):
            owner = network.owner_id(key)
            assert key.startswith(owner)
            owners.setdefault(owner, 0)
            owners[owner] += 1
        assert set(owners) == set(network.peer_ids())

    def test_owner_of_prefix_key(self):
        network = build(30)
        some_peer = network.peer_ids()[5]
        assert network.owner_id(some_peer) == some_peer

    def test_owner_on_empty_network_raises(self):
        with pytest.raises(FissioneError):
            FissioneNetwork(object_id_length=24).owner_id("0101")


class TestNeighbours:
    def test_out_neighbors_have_required_form(self):
        # Section 3: out-neighbours of u1..ub have ids u2..ub q1..qm, 0<=m<=2.
        network = build(80)
        for peer_id in network.peer_ids():
            tail = peer_id[1:]
            for neighbor in network.out_neighbors(peer_id):
                if tail:
                    assert neighbor.startswith(tail) or tail.startswith(neighbor)
                assert abs(len(neighbor) - len(peer_id)) <= 1

    def test_in_out_consistency(self):
        network = build(60)
        for peer_id in network.peer_ids():
            for neighbor in network.out_neighbors(peer_id):
                assert peer_id in network.in_neighbors(neighbor)

    def test_no_self_loops(self):
        network = build(60)
        for peer_id in network.peer_ids():
            assert peer_id not in network.out_neighbors(peer_id)
            assert peer_id not in network.in_neighbors(peer_id)

    def test_average_out_degree_is_constant(self):
        small, large = build(50), build(200)
        assert small.average_degree() == pytest.approx(2.0, abs=0.4)
        assert large.average_degree() == pytest.approx(2.0, abs=0.4)

    def test_unknown_peer_raises(self):
        network = build(20)
        with pytest.raises(FissioneError):
            network.out_neighbors("0000")

    def test_compatible_peers_of_unknown_prefix(self):
        network = build(30)
        # Any valid prefix must resolve to at least one compatible peer.
        assert network.compatible_peers("0121") != []
        assert network.compatible_peers("") == network.peer_ids()


class TestJoinLeave:
    def test_join_increases_size_by_one(self):
        network = build(10)
        network.join(rng=DeterministicRNG(2))
        assert network.size == 11
        assert check_topology(network).healthy

    def test_join_with_target_key_splits_owner_zone(self):
        network = build(10, object_id_length=24)
        key = ks.min_extension("010", 24)
        owner_before = network.owner_id(key)
        network.join(target_key=key)
        owner_after = network.owner_id(key)
        assert len(owner_after) >= len(owner_before)
        assert check_topology(network).healthy

    def test_join_without_arguments_raises(self):
        network = build(10)
        with pytest.raises(FissioneError):
            network.join()

    def test_leave_decreases_size_by_one(self):
        network = build(20)
        victim = network.peer_ids()[7]
        network.leave(victim)
        assert network.size == 19
        assert not network.has_peer(victim) or network.peer(victim) is not None
        assert check_topology(network).healthy

    def test_leave_unknown_peer_raises(self):
        network = build(10)
        with pytest.raises(FissioneError):
            network.leave("00000")

    def test_cannot_shrink_below_initial_size(self):
        network = FissioneNetwork(object_id_length=24)
        network.seed_initial()
        with pytest.raises(FissioneError):
            network.leave("0")

    def test_objects_survive_leave(self):
        network = build(20, object_id_length=16)
        object_id = ks.min_extension("012", 16)
        network.publish(object_id, key=1.0, value="keep-me")
        owner = network.owner_id(object_id)
        network.leave(owner)
        assert [stored.value for stored in network.lookup(object_id)] == ["keep-me"]

    def test_objects_survive_join_split(self):
        network = build(10, object_id_length=16)
        object_id = ks.max_extension("21", 16)
        network.publish(object_id, key=2.0, value="still-here")
        network.join(target_key=object_id)
        assert [stored.value for stored in network.lookup(object_id)] == ["still-here"]


class TestPublishLookup:
    def test_publish_places_object_at_owner(self):
        network = build(25, object_id_length=16)
        object_id = ks.min_extension("21", 16)
        peer = network.publish(object_id, key=3.0, value="data")
        assert object_id.startswith(peer.peer_id)
        assert network.total_objects() == 1

    def test_publish_named_roundtrip(self):
        network = build(25, object_id_length=16)
        object_id, _peer = network.publish_named("alice", value="record")
        assert [stored.value for stored in network.lookup(object_id)] == ["record"]

    def test_publish_invalid_object_id_rejected(self):
        network = build(10, object_id_length=16)
        with pytest.raises(ks.KautzStringError):
            network.publish("0011" * 4, key=1.0, value=None)
        with pytest.raises(FissioneError):
            network.publish("0101", key=1.0, value=None)  # wrong length

    def test_random_peer_is_member(self):
        network = build(30)
        rng = DeterministicRNG(4)
        for _ in range(10):
            assert network.has_peer(network.random_peer(rng).peer_id)
