"""Unit tests for FISSIONE peers (zone ownership and local storage)."""

from __future__ import annotations

import pytest

from repro.fissione.peer import FissionePeer


class TestOwnership:
    def test_owns_extensions_of_its_id(self):
        peer = FissionePeer(peer_id="012")
        assert peer.owns("0120101")
        assert peer.owns("0121212")
        assert not peer.owns("0210101")
        assert not peer.owns("01")

    def test_node_id_alias(self):
        peer = FissionePeer(peer_id="012")
        assert peer.node_id == "012"
        assert peer.id_length == 3


class TestStorage:
    def test_put_and_get(self):
        peer = FissionePeer(peer_id="01")
        peer.put("010101", key=5.0, value="payload")
        stored = peer.get("010101")
        assert len(stored) == 1
        assert stored[0].key == 5.0
        assert stored[0].value == "payload"

    def test_put_rejects_foreign_object(self):
        peer = FissionePeer(peer_id="01")
        with pytest.raises(ValueError):
            peer.put("020101", key=5.0, value=None)

    def test_get_missing_returns_empty(self):
        assert FissionePeer(peer_id="01").get("010101") == []

    def test_multiple_objects_same_id(self):
        peer = FissionePeer(peer_id="01")
        peer.put("010101", key=1.0, value="a")
        peer.put("010101", key=1.0, value="b")
        assert peer.object_count() == 2
        assert len(peer.get("010101")) == 2

    def test_objects_lists_everything(self):
        peer = FissionePeer(peer_id="01")
        peer.put("010101", key=1.0, value="a")
        peer.put("012121", key=2.0, value="b")
        assert {stored.value for stored in peer.objects()} == {"a", "b"}

    def test_take_objects_with_prefix_moves_matching(self):
        peer = FissionePeer(peer_id="01")
        peer.put("010101", key=1.0, value="left")
        peer.put("012121", key=2.0, value="right")
        moved = peer.take_objects_with_prefix("012")
        assert [stored.value for stored in moved] == ["right"]
        assert peer.object_count() == 1
        assert peer.get("010101")[0].value == "left"

    def test_absorb_adds_objects(self):
        donor = FissionePeer(peer_id="01")
        donor.put("010101", key=1.0, value="x")
        receiver = FissionePeer(peer_id="0")
        receiver.absorb(donor.objects())
        assert receiver.object_count() == 1
