"""Unit tests for FISSIONE exact-match routing."""

from __future__ import annotations

import math

import pytest

from repro.fissione.network import FissioneError, FissioneNetwork
from repro.fissione.routing import RoutePath, average_route_hops, route
from repro.kautz import strings as ks
from repro.sim.rng import DeterministicRNG


def build(num_peers: int, seed: int = 1, object_id_length: int = 24) -> FissioneNetwork:
    return FissioneNetwork.build(
        num_peers, DeterministicRNG(seed).substream("topology"), object_id_length=object_id_length
    )


def random_object_id(network: FissioneNetwork, rng: DeterministicRNG) -> str:
    index = rng.randint(0, ks.space_size(network.base, network.object_id_length) - 1)
    return ks.unrank(index, network.object_id_length, base=network.base)


class TestRouteCorrectness:
    def test_route_ends_at_owner(self):
        network = build(60)
        rng = DeterministicRNG(2)
        for _ in range(50):
            source = network.random_peer(rng).peer_id
            object_id = random_object_id(network, rng)
            path = route(network, source, object_id)
            assert path.destination == network.owner_id(object_id)

    def test_route_from_owner_is_zero_hops(self):
        network = build(40)
        rng = DeterministicRNG(3)
        object_id = random_object_id(network, rng)
        owner = network.owner_id(object_id)
        path = route(network, owner, object_id)
        assert path.hops == 0
        assert path.peers == [owner]

    def test_route_path_follows_out_neighbor_edges(self):
        network = build(80)
        rng = DeterministicRNG(4)
        for _ in range(20):
            source = network.random_peer(rng).peer_id
            object_id = random_object_id(network, rng)
            path = route(network, source, object_id)
            for current, nxt in zip(path.peers, path.peers[1:]):
                assert nxt in network.out_neighbors(current), (
                    f"{nxt} is not an out-neighbour of {current}"
                )

    def test_unknown_source_raises(self):
        network = build(10)
        with pytest.raises(FissioneError):
            route(network, "00000", ks.min_extension("0", network.object_id_length))

    def test_short_object_id_raises(self):
        network = build(10)
        with pytest.raises(FissioneError):
            route(network, network.peer_ids()[0], "010")


class TestRouteBounds:
    def test_hops_bounded_by_source_id_length(self):
        network = build(150)
        rng = DeterministicRNG(5)
        for _ in range(100):
            source = network.random_peer(rng).peer_id
            object_id = random_object_id(network, rng)
            path = route(network, source, object_id)
            assert path.hops <= len(source)

    def test_max_hops_below_twice_log_n(self):
        network = build(200)
        rng = DeterministicRNG(6)
        bound = 2 * math.log2(network.size) + 1
        for _ in range(100):
            source = network.random_peer(rng).peer_id
            object_id = random_object_id(network, rng)
            assert route(network, source, object_id).hops <= bound

    def test_average_hops_below_log_n(self):
        network = build(300)
        average = average_route_hops(network, DeterministicRNG(7), samples=150)
        assert average < math.log2(network.size) + 0.5

    def test_average_route_hops_requires_positive_samples(self):
        network = build(10)
        with pytest.raises(ValueError):
            average_route_hops(network, DeterministicRNG(1), samples=0)


class TestRoutePathObject:
    def test_repr_and_properties(self):
        path = RoutePath(source="01", object_id="0" + "10" * 12, peers=["01", "10", "012"])
        assert path.hops == 2
        assert path.destination == "012"
        assert "hops=2" in repr(path)

    def test_empty_path_defaults_to_source(self):
        path = RoutePath(source="01", object_id="0101", peers=[])
        assert path.destination == "01"
        assert path.hops == 0
