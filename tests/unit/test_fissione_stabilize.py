"""Unit tests for topology checks and churn handling."""

from __future__ import annotations

from repro.fissione.network import FissioneNetwork
from repro.fissione.stabilize import TopologyReport, check_topology, churn
from repro.sim.rng import DeterministicRNG


def build(num_peers: int, seed: int = 1) -> FissioneNetwork:
    return FissioneNetwork.build(
        num_peers, DeterministicRNG(seed).substream("topology"), object_id_length=24
    )


class TestTopologyReport:
    def test_healthy_network_report(self):
        report = check_topology(build(64))
        assert report.healthy
        assert report.peer_count == 64
        assert report.covers_namespace
        assert report.prefix_free
        assert report.neighborhood_violations == 0
        assert report.within_paper_bounds()

    def test_report_detects_missing_coverage(self):
        network = build(16)
        # Manually remove a peer without repair: the cover must break.
        victim = network.peer_ids()[3]
        network._remove_peer(victim)  # white-box: simulate an un-repaired failure
        report = check_topology(network)
        assert not report.covers_namespace
        assert not report.healthy

    def test_report_detects_prefix_violation(self):
        network = build(16)
        from repro.fissione.peer import FissionePeer

        longest = max(network.peer_ids(), key=len)
        # Add a peer whose id extends an existing one: prefix-freeness breaks.
        extension = longest + ("0" if longest[-1] != "0" else "1")
        network._add_peer(FissionePeer(peer_id=extension))
        report = check_topology(network)
        assert not report.prefix_free

    def test_small_networks_trivially_within_bounds(self):
        report = TopologyReport(
            peer_count=3,
            covers_namespace=True,
            prefix_free=True,
            neighborhood_violations=0,
            max_id_length=1,
            average_id_length=1.0,
            average_out_degree=2.0,
            max_out_degree=2,
        )
        assert report.within_paper_bounds()


class TestChurn:
    def test_churn_preserves_invariants(self):
        network = build(60)
        rng = DeterministicRNG(11)
        joins, leaves = churn(network, rng, joins=30, leaves=20)
        assert joins == 30
        assert leaves == 20
        assert network.size == 70
        report = check_topology(network)
        assert report.healthy
        assert report.within_paper_bounds()

    def test_churn_skips_leaves_at_minimum_size(self):
        network = FissioneNetwork(object_id_length=24)
        network.seed_initial()
        rng = DeterministicRNG(12)
        joins, leaves = churn(network, rng, joins=0, leaves=5)
        assert joins == 0
        assert leaves == 0
        assert network.size == 3

    def test_heavy_churn_keeps_objects_reachable(self):
        network = build(40)
        rng = DeterministicRNG(13)
        object_ids = []
        for index in range(30):
            object_id, _peer = network.publish_named(f"object-{index}", value=index)
            object_ids.append(object_id)
        churn(network, rng, joins=40, leaves=35)
        for index, object_id in enumerate(object_ids):
            values = [stored.value for stored in network.lookup(object_id)]
            assert values == [index]
