"""Unit tests for the forward routing tree and its level arithmetic."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.core.frt import (
    ForwardRoutingTree,
    descendant_prefix,
    destination_level,
    longest_suffix_prefix,
)
from repro.kautz.region import KautzRegion


class TestLongestSuffixPrefix:
    def test_basic_overlap(self):
        assert longest_suffix_prefix("0212021", "0") == ""
        assert longest_suffix_prefix("2101", "0120") == "01"
        assert longest_suffix_prefix("0102", "0212") == "02"

    def test_full_peer_id_is_prefix_of_target(self):
        assert longest_suffix_prefix("012", "01201") == "012"

    def test_no_overlap(self):
        assert longest_suffix_prefix("010", "212") == ""

    def test_empty_target(self):
        assert longest_suffix_prefix("010", "") == ""


class TestDestinationLevel:
    def test_level_is_b_minus_f(self):
        region = KautzRegion("012010", "012021")  # ComT = "0120"
        assert destination_level("210120", region) == 6 - 4
        assert destination_level("2101", region) == 4 - 2
        assert destination_level("2121", region) == 4 - 0

    def test_origin_owning_whole_region(self):
        region = KautzRegion("012010", "012021")
        # PeerID "0120" is itself a prefix of ComT: every destination is the origin.
        assert destination_level("0120", region) == 0

    def test_empty_peer_id_raises(self):
        with pytest.raises(QueryError):
            destination_level("", KautzRegion("010", "012"))


class TestDescendantPrefix:
    def test_drops_leading_symbols(self):
        assert descendant_prefix("012021", 2, 5) == "021"
        assert descendant_prefix("012021", 4, 5) == "12021"
        assert descendant_prefix("012021", 5, 5) == "012021"

    def test_short_peer_id_gives_empty_prefix(self):
        assert descendant_prefix("01", 0, 5) == ""

    def test_level_beyond_destination_raises(self):
        with pytest.raises(QueryError):
            descendant_prefix("012", 6, 5)


class TestForwardRoutingTree:
    def test_figure4_style_structure(self, small_network):
        root_id = small_network.peer_ids()[0]
        frt = ForwardRoutingTree(small_network, root_id)
        assert frt.height == len(root_id)
        tree = frt.build(max_level=2)
        assert tree.peer_id == root_id
        assert tree.level == 0
        # Children are exactly the out-neighbours, sorted.
        child_ids = [child.peer_id for child in tree.children]
        assert child_ids == sorted(small_network.out_neighbors(root_id))

    def test_level_peers_share_suffix_prefix(self, small_network):
        root_id = max(small_network.peer_ids(), key=len)
        frt = ForwardRoutingTree(small_network, root_id)
        for level in range(1, frt.height):
            suffix = root_id[level:]
            for peer_id in frt.level_peers(level):
                assert peer_id.startswith(suffix) or suffix.startswith(peer_id)

    def test_level_zero_is_root(self, small_network):
        root_id = small_network.peer_ids()[3]
        frt = ForwardRoutingTree(small_network, root_id)
        assert frt.level_peers(0) == [root_id]

    def test_last_level_excludes_last_symbol_prefix(self, small_network):
        root_id = small_network.peer_ids()[3]
        frt = ForwardRoutingTree(small_network, root_id)
        last = root_id[-1]
        for peer_id in frt.level_peers(frt.height):
            assert not peer_id.startswith(last)

    def test_level_out_of_bounds_raises(self, small_network):
        frt = ForwardRoutingTree(small_network, small_network.peer_ids()[0])
        with pytest.raises(QueryError):
            frt.level_peers(-1)
        with pytest.raises(QueryError):
            frt.level_peers(frt.height + 1)

    def test_children_in_tree_are_out_neighbors(self, small_network):
        root_id = small_network.peer_ids()[10]
        frt = ForwardRoutingTree(small_network, root_id)
        tree = frt.build(max_level=3)
        stack = [tree]
        while stack:
            node = stack.pop()
            for child in node.children:
                assert child.peer_id in small_network.out_neighbors(node.peer_id)
                assert child.level == node.level + 1
                stack.append(child)

    def test_descendants_enumeration(self, small_network):
        root_id = small_network.peer_ids()[0]
        tree = ForwardRoutingTree(small_network, root_id).build(max_level=2)
        descendants = tree.descendants()
        assert len(descendants) == sum(1 for _ in _walk(tree)) - 1

    def test_render_contains_root_and_indentation(self, small_network):
        root_id = small_network.peer_ids()[0]
        text = ForwardRoutingTree(small_network, root_id).render(max_level=1)
        lines = text.splitlines()
        assert lines[0] == root_id
        assert all(line.startswith("  ") for line in lines[1:])

    def test_unknown_root_raises(self, small_network):
        with pytest.raises(QueryError):
            ForwardRoutingTree(small_network, "0000")


def _walk(node):
    yield node
    for child in node.children:
        yield from _walk(child)
