"""Unit tests: the gossip membership table and incarnation refutation."""

from __future__ import annotations

from repro.gossip import (
    ALIVE,
    DEAD,
    LEFT,
    SUSPECT,
    GossipSim,
    MemberEntry,
    MembershipTable,
    SwimConfig,
)

#: brisk protocol timing so refutation scenarios settle in a few sim seconds
FAST = SwimConfig(
    interval=0.05, ping_timeout=0.05, indirect_timeout=0.08, suspicion_timeout=0.3
)


class TestMembershipTable:
    def test_apply_and_lookup(self):
        table = MembershipTable()
        assert table.apply("P0", ALIVE, 0, ("h", 1)) is True
        assert table.state_of("P0") == ALIVE
        assert table.address_of("P0") == ("h", 1)
        assert table.alive_ids() == ["P0"]

    def test_higher_incarnation_always_wins(self):
        table = MembershipTable()
        table.apply("P0", DEAD, 3)
        # A fresher incarnation revives the entry even from DEAD...
        assert table.apply("P0", ALIVE, 4) is True
        assert table.state_of("P0") == ALIVE
        # ...and a stale rumor at an older incarnation is absorbed.
        assert table.apply("P0", SUSPECT, 2) is False
        assert table.state_of("P0") == ALIVE

    def test_equal_incarnation_pessimism_wins(self):
        table = MembershipTable()
        table.apply("P0", ALIVE, 5)
        assert table.apply("P0", SUSPECT, 5) is True
        assert table.apply("P0", ALIVE, 5) is False  # alive can't un-suspect
        assert table.apply("P0", DEAD, 5) is True
        assert table.state_of("P0") == DEAD

    def test_left_is_as_final_as_dead(self):
        table = MembershipTable()
        table.apply("P0", ALIVE, 2)
        assert table.apply("P0", LEFT, 2) is True
        assert table.apply("P0", SUSPECT, 2) is False
        assert table.left_ids() == ["P0"]

    def test_recycled_peer_id_needs_a_fresh_incarnation(self):
        # Churn recycles PeerIDs: after P0 leaves, a relocated peer adopts
        # the id.  Announcing it at incarnation 0 must NOT resurrect it —
        # only an incarnation past the tombstone's does.
        table = MembershipTable()
        table.apply("P0", LEFT, 1)
        assert table.apply("P0", ALIVE, 0) is False
        assert table.state_of("P0") == LEFT
        assert table.apply("P0", ALIVE, 2, ("h", 9)) is True
        assert table.state_of("P0") == ALIVE
        assert table.address_of("P0") == ("h", 9)

    def test_digest_round_trips_through_merge(self):
        table = MembershipTable()
        table.apply("P0", ALIVE, 1, ("a", 1))
        table.apply("P1", SUSPECT, 0)
        table.apply("P2", DEAD, 2)
        other = MembershipTable()
        changed = other.merge(table.digest())
        assert sorted(peer for peer, _state in changed) == ["P0", "P1", "P2"]
        assert other.liveness_view() == table.liveness_view()
        # Re-merging the same digest is a no-op.
        assert other.merge(table.digest()) == []

    def test_entry_wire_round_trip(self):
        entry = MemberEntry("P3", SUSPECT, 7, ("host", 1234), version=9)
        decoded = MemberEntry.from_wire(entry.to_wire())
        assert (decoded.peer_id, decoded.state, decoded.incarnation) == ("P3", SUSPECT, 7)
        assert decoded.address == ("host", 1234)

    def test_digest_limit_keeps_freshest(self):
        table = MembershipTable()
        for index in range(10):
            table.apply(f"P{index}", ALIVE, 0)
        table.apply("P7", SUSPECT, 0)  # freshest version
        digest = table.digest(limit=3)
        assert len(digest) == 3
        assert digest[0][0] == "P7"

    def test_counts_and_liveness_view(self):
        table = MembershipTable()
        table.apply("P0", ALIVE, 0)
        table.apply("P1", SUSPECT, 0)
        table.apply("P2", DEAD, 0)
        table.apply("P3", LEFT, 0)
        assert table.counts() == {"alive": 1, "suspect": 1, "dead": 1, "left": 1}
        alive, dead = table.liveness_view()
        assert alive == ("P0", "P1")  # suspects still count as maybe-up
        assert dead == ("P2", "P3")

    def test_on_change_fires_only_on_transitions(self):
        table = MembershipTable()
        seen = []
        table.on_change(lambda peer, old, new, entry: seen.append((peer, old, new)))
        table.apply("P0", ALIVE, 0)
        table.apply("P0", ALIVE, 1)  # refresh, same state: no notification
        table.apply("P0", SUSPECT, 1)
        assert seen == [("P0", None, ALIVE), ("P0", ALIVE, SUSPECT)]


class TestIncarnationRefutation:
    def test_falsely_suspected_peer_never_flaps_dead(self):
        """A live peer rumored SUSPECT must refute and never reach DEAD."""
        sim = GossipSim(nodes=4, seed=11, config=FAST)
        sim.start()
        sim.run(until=1.0)
        died = []
        for agent in sim.nodes.values():
            agent.table.on_change(
                lambda peer, old, new, entry: died.append(peer)
                if peer == "P0" and new == DEAD
                else None
            )
        # Plant the false rumor everywhere except P0's own host: the
        # suspicion clock is now ticking on three independent views.
        for node_id, agent in sim.nodes.items():
            if "P0" not in sim.hosted[node_id]:
                agent.table.apply("P0", SUSPECT, 0)
        sim.run(until=6.0)
        assert died == [], "a live peer was declared dead despite refutation"
        for view in sim.surviving_views():
            assert view.state_of("P0") == ALIVE
            # The refutation rode a bumped incarnation.
            assert view.get("P0").incarnation >= 1

    def test_left_rumor_about_live_tenant_is_refuted(self):
        """LEFT counts as a rumor too: churn recycles PeerIDs, so a live
        hosted tenant must out-announce a stale departure record."""
        sim = GossipSim(nodes=3, seed=5, config=FAST)
        sim.start()
        sim.run(until=1.0)
        for node_id, agent in sim.nodes.items():
            if "P1" not in sim.hosted[node_id]:
                agent.table.apply("P1", LEFT, 0)
        sim.run(until=6.0)
        for view in sim.surviving_views():
            assert view.state_of("P1") == ALIVE

    def test_crashed_peer_is_detected_dead(self):
        """The control case: a genuinely dead peer cannot refute."""
        sim = GossipSim(nodes=4, seed=3, config=FAST)
        sim.start()
        sim.run(until=1.0)
        victims = sim.crash("node-2")
        when = sim.run_until_converged(expect_dead=victims, timeout=30.0)
        assert when is not None, "views never converged on the crash"
        for view in sim.surviving_views():
            for victim in victims:
                assert view.state_of(victim) == DEAD
