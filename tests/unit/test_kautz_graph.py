"""Unit tests for the static Kautz graph K(d, k)."""

from __future__ import annotations

import pytest

from repro.kautz import strings as ks
from repro.kautz.graph import KautzGraph


class TestStructure:
    def test_node_count(self):
        assert KautzGraph(2, 3).node_count == 12
        assert KautzGraph(2, 4).node_count == 24

    def test_out_degree_is_constant(self):
        graph = KautzGraph(2, 3)
        for node in graph.nodes():
            assert len(graph.out_neighbors(node)) == 2

    def test_in_degree_is_constant(self):
        graph = KautzGraph(2, 3)
        for node in graph.nodes():
            assert len(graph.in_neighbors(node)) == 2

    def test_paper_figure1_examples(self):
        # Figure 1 shows K(2,3); node 012 has out-edges to 120 and 121.
        graph = KautzGraph(2, 3)
        assert sorted(graph.out_neighbors("012")) == ["120", "121"]
        assert sorted(graph.out_neighbors("212")) == ["120", "121"]
        assert graph.has_edge("010", "102")
        assert not graph.has_edge("010", "010")

    def test_in_out_consistency(self):
        graph = KautzGraph(2, 3)
        for node in graph.nodes():
            for neighbor in graph.out_neighbors(node):
                assert node in graph.in_neighbors(neighbor)

    def test_wrong_length_node_rejected(self):
        graph = KautzGraph(2, 3)
        with pytest.raises(ks.KautzStringError):
            graph.out_neighbors("01")
        with pytest.raises(ks.KautzStringError):
            graph.in_neighbors("0102")


class TestPaths:
    def test_shortest_path_endpoints(self):
        graph = KautzGraph(2, 3)
        path = graph.shortest_path("012", "201")
        assert path[0] == "012"
        assert path[-1] == "201"
        for first, second in zip(path, path[1:]):
            assert graph.has_edge(first, second)

    def test_shortest_path_to_self(self):
        graph = KautzGraph(2, 3)
        assert graph.shortest_path("012", "012") == ["012"]

    def test_kautz_path_follows_splice(self):
        graph = KautzGraph(2, 3)
        path = graph.kautz_path("212", "120")
        assert path[0] == "212"
        assert path[-1] == "120"
        for first, second in zip(path, path[1:]):
            assert graph.has_edge(first, second)

    def test_kautz_path_length_at_most_k(self):
        graph = KautzGraph(2, 4)
        nodes = list(graph.nodes())
        for source in nodes[:6]:
            for target in nodes[-6:]:
                path = graph.kautz_path(source, target)
                assert len(path) - 1 <= graph.length

    def test_kautz_path_never_shorter_than_shortest(self):
        graph = KautzGraph(2, 3)
        nodes = list(graph.nodes())
        for source in nodes[:4]:
            for target in nodes[:4]:
                shortest = graph.shortest_path(source, target)
                kautz = graph.kautz_path(source, target)
                assert len(kautz) >= len(shortest)

    def test_diameter_is_k(self):
        # The Kautz graph K(d, k) has optimal diameter k.
        assert KautzGraph(2, 2).diameter() == 2
        assert KautzGraph(2, 3).diameter() == 3
