"""Unit tests for Kautz regions (Definition 1 and PIRA's pruning predicate)."""

from __future__ import annotations

import pytest

from repro.kautz import strings as ks
from repro.kautz.region import KautzRegion


class TestConstruction:
    def test_paper_example_region(self):
        # Definition 1: <010, 021> = {010, 012, 020, 021}.
        region = KautzRegion("010", "021")
        assert sorted(region) == ["010", "012", "020", "021"]
        assert region.size == 4

    def test_single_string_region(self):
        region = KautzRegion("012", "012")
        assert list(region) == ["012"]
        assert region.size == 1

    def test_invalid_order_raises(self):
        with pytest.raises(ks.KautzStringError):
            KautzRegion("021", "010")

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ks.KautzStringError):
            KautzRegion("01", "021")

    def test_invalid_endpoint_raises(self):
        with pytest.raises(ks.KautzStringError):
            KautzRegion("011", "021")


class TestMembership:
    def test_contains_endpoints_and_interior(self):
        region = KautzRegion("0120", "0202")
        assert "0120" in region
        assert "0202" in region
        assert "0121" in region
        assert "0201" in region

    def test_excludes_outside(self):
        region = KautzRegion("0120", "0202")
        assert "0102" not in region
        assert "0210" not in region

    def test_wrong_length_not_member(self):
        region = KautzRegion("0120", "0202")
        assert "012" not in region

    def test_size_matches_enumeration(self):
        region = KautzRegion("0120", "0212")
        assert region.size == len(list(region))


class TestCommonPrefix:
    def test_common_prefix(self):
        assert KautzRegion("0120", "0202").common_prefix() == "0"
        assert KautzRegion("0120", "0121").common_prefix() == "012"
        assert KautzRegion("0101", "2121").common_prefix() == ""


class TestContainsPrefix:
    def test_prefix_inside_region(self):
        region = KautzRegion("0120", "0202")
        assert region.contains_prefix("012")
        assert region.contains_prefix("020")
        assert region.contains_prefix("0")

    def test_prefix_outside_region(self):
        region = KautzRegion("0120", "0202")
        assert not region.contains_prefix("1")
        assert not region.contains_prefix("2")
        assert not region.contains_prefix("0101")

    def test_empty_prefix_always_contained(self):
        assert KautzRegion("0120", "0202").contains_prefix("")

    def test_prefix_longer_than_region_length(self):
        region = KautzRegion("0120", "0202")
        assert region.contains_prefix("01201")  # its first 4 symbols are in the region
        assert not region.contains_prefix("02101")

    def test_contains_prefix_matches_enumeration(self):
        region = KautzRegion("01210", "02021")
        members = set(region)
        for prefix_length in range(1, 5):
            for prefix in ks.kautz_strings_with_prefix("", prefix_length, base=2):
                expected = any(member.startswith(prefix) for member in members)
                assert region.contains_prefix(prefix) == expected

    def test_intersect_prefix_count(self):
        region = KautzRegion("0120", "0202")
        assert region.intersect_prefix_count("012") == 2  # 0120, 0121
        assert region.intersect_prefix_count("1") == 0
        assert region.intersect_prefix_count("0120") == 1
        total = sum(
            region.intersect_prefix_count(prefix)
            for prefix in ("010", "012", "020", "021")
        )
        assert total == region.size


class TestSplitting:
    def test_region_with_common_prefix_is_not_split(self):
        region = KautzRegion("0120", "0202")
        assert region.split_by_first_symbol() == [region]

    def test_split_covers_region_exactly(self):
        region = KautzRegion("0121", "2101")
        parts = region.split_by_first_symbol()
        assert 2 <= len(parts) <= 3
        union = set()
        for part in parts:
            assert part.common_prefix() != ""
            union |= set(part)
        assert union == set(region)

    def test_full_space_split_into_three(self):
        region = KautzRegion("0101", "2121")
        parts = region.split_by_first_symbol()
        assert len(parts) == 3
        assert [part.low[0] for part in parts] == ["0", "1", "2"]

    def test_union_size_helper(self):
        first = KautzRegion("010", "012")
        second = KautzRegion("012", "021")
        assert first.union_size(second) == len(set(first) | set(second))
        with pytest.raises(ks.KautzStringError):
            first.union_size(KautzRegion("0101", "0121"))
