"""Unit tests for the KautzSpace namespace wrapper."""

from __future__ import annotations

import pytest

from repro.kautz import strings as ks
from repro.kautz.space import KautzSpace
from repro.sim.rng import DeterministicRNG


class TestKautzSpace:
    def test_size_matches_formula(self):
        assert KautzSpace(2, 3).size == 12
        assert len(KautzSpace(2, 5)) == 3 * 2 ** 4

    def test_iteration_is_sorted_and_complete(self):
        space = KautzSpace(2, 3)
        values = list(space)
        assert len(values) == space.size
        assert values == sorted(values)
        assert all(ks.is_kautz_string(value, base=2) for value in values)

    def test_membership(self):
        space = KautzSpace(2, 3)
        assert "010" in space
        assert "012" in space
        assert "0102" not in space  # wrong length
        assert "011" not in space  # invalid string
        assert 42 not in space  # wrong type

    def test_first_and_last(self):
        space = KautzSpace(2, 4)
        assert space.first() == "0101"
        assert space.last() == "2121"

    def test_rank_unrank_consistency(self):
        space = KautzSpace(2, 4)
        for index in (0, 5, 11, space.size - 1):
            assert space.rank(space.unrank(index)) == index

    def test_rank_rejects_wrong_length(self):
        with pytest.raises(ks.KautzStringError):
            KautzSpace(2, 3).rank("01")

    def test_sample_is_reproducible_and_in_space(self):
        space = KautzSpace(2, 6)
        first = space.sample(DeterministicRNG(3), count=10)
        second = space.sample(DeterministicRNG(3), count=10)
        assert first == second
        assert all(value in space for value in first)

    def test_sample_negative_count_raises(self):
        with pytest.raises(ValueError):
            KautzSpace(2, 3).sample(DeterministicRNG(1), count=-1)

    def test_with_prefix(self):
        space = KautzSpace(2, 4)
        assert space.with_prefix("01") == ["0101", "0102", "0120", "0121"]

    def test_invalid_parameters(self):
        with pytest.raises(ks.KautzStringError):
            KautzSpace(2, 0)
        with pytest.raises(ks.KautzStringError):
            KautzSpace(0, 3)
