"""Unit tests for the low-level Kautz string helpers."""

from __future__ import annotations

import pytest

from repro.kautz import strings as ks


class TestValidation:
    def test_valid_strings(self):
        for value in ("0", "01", "010", "212", "0120", "21021"):
            assert ks.is_kautz_string(value, base=2)

    def test_adjacent_repeat_is_invalid(self):
        assert not ks.is_kautz_string("001", base=2)
        assert not ks.is_kautz_string("110", base=2)
        assert not ks.is_kautz_string("0122", base=2)

    def test_symbol_outside_alphabet_is_invalid(self):
        assert not ks.is_kautz_string("013", base=2)
        assert not ks.is_kautz_string("0a1", base=2)

    def test_empty_requires_flag(self):
        assert not ks.is_kautz_string("", base=2)
        assert ks.is_kautz_string("", base=2, allow_empty=True)

    def test_validate_raises_with_position_info(self):
        with pytest.raises(ks.KautzStringError):
            ks.validate_kautz_string("011", base=2)

    def test_base_bounds(self):
        with pytest.raises(ks.KautzStringError):
            ks.alphabet(0)
        with pytest.raises(ks.KautzStringError):
            ks.alphabet(9)
        assert ks.alphabet(3) == "0123"


class TestPrefixHelpers:
    def test_is_prefix(self):
        assert ks.is_prefix("01", "0102")
        assert ks.is_prefix("", "0102")
        assert not ks.is_prefix("02", "0102")

    def test_common_prefix(self):
        assert ks.common_prefix("0102", "0121") == "01"
        assert ks.common_prefix("0102", "0102") == "0102"
        assert ks.common_prefix("0102", "2102") == ""

    def test_allowed_symbols_excludes_previous(self):
        assert ks.allowed_symbols("0", base=2) == ["1", "2"]
        assert ks.allowed_symbols("1", base=2) == ["0", "2"]
        assert ks.allowed_symbols(None, base=2) == ["0", "1", "2"]
        assert ks.allowed_symbols("", base=2) == ["0", "1", "2"]


class TestExtensions:
    def test_min_extension_examples(self):
        assert ks.min_extension("", 3, base=2) == "010"
        assert ks.min_extension("02", 4, base=2) == "0201"
        assert ks.min_extension("21", 4, base=2) == "2101"

    def test_max_extension_examples(self):
        assert ks.max_extension("", 3, base=2) == "212"
        assert ks.max_extension("02", 4, base=2) == "0212"
        assert ks.max_extension("20", 4, base=2) == "2021"

    def test_extension_of_full_length_is_identity(self):
        assert ks.min_extension("010", 3, base=2) == "010"
        assert ks.max_extension("010", 3, base=2) == "010"

    def test_extension_longer_prefix_raises(self):
        with pytest.raises(ks.KautzStringError):
            ks.min_extension("0102", 3, base=2)

    def test_min_le_max_for_all_prefixes(self):
        for prefix in ("0", "1", "2", "01", "21", "020", "121"):
            assert ks.min_extension(prefix, 6) <= ks.max_extension(prefix, 6)


class TestCounting:
    def test_space_size_formula(self):
        assert ks.space_size(2, 1) == 3
        assert ks.space_size(2, 2) == 6
        assert ks.space_size(2, 3) == 12
        assert ks.space_size(2, 4) == 24
        assert ks.space_size(3, 2) == 12

    def test_strings_with_prefix_count(self):
        assert ks.strings_with_prefix_count("", 3, base=2) == 12
        assert ks.strings_with_prefix_count("0", 3, base=2) == 4
        assert ks.strings_with_prefix_count("01", 3, base=2) == 2
        assert ks.strings_with_prefix_count("010", 3, base=2) == 1
        assert ks.strings_with_prefix_count("0102", 3, base=2) == 0


class TestRankUnrank:
    def test_rank_unrank_roundtrip_k3(self):
        for index in range(ks.space_size(2, 3)):
            value = ks.unrank(index, 3, base=2)
            assert ks.rank(value, base=2) == index

    def test_rank_is_lexicographic(self):
        values = [ks.unrank(index, 4, base=2) for index in range(ks.space_size(2, 4))]
        assert values == sorted(values)

    def test_first_and_last(self):
        assert ks.unrank(0, 3, base=2) == "010"
        assert ks.unrank(ks.space_size(2, 3) - 1, 3, base=2) == "212"

    def test_unrank_out_of_range(self):
        with pytest.raises(ks.KautzStringError):
            ks.unrank(-1, 3, base=2)
        with pytest.raises(ks.KautzStringError):
            ks.unrank(ks.space_size(2, 3), 3, base=2)

    def test_successor_predecessor(self):
        assert ks.successor("010", base=2) == "012"
        assert ks.predecessor("012", base=2) == "010"
        assert ks.predecessor("010", base=2) is None
        assert ks.successor("212", base=2) is None

    def test_kautz_strings_with_prefix_enumeration(self):
        strings = ks.kautz_strings_with_prefix("01", 4, base=2)
        assert strings == ["0101", "0102", "0120", "0121"]
        assert ks.kautz_strings_with_prefix("0102", 3, base=2) == []


class TestGraphOperations:
    def test_shift_append(self):
        assert ks.shift_append("012", "0", base=2) == "120"
        assert ks.shift_append("012", "1", base=2) == "121"

    def test_shift_append_rejects_repeat(self):
        with pytest.raises(ks.KautzStringError):
            ks.shift_append("012", "2", base=2)

    def test_splice_with_overlap(self):
        assert ks.splice("212", "120", base=2) == "2120"
        assert ks.splice("212", "12021", base=2) == "212021"

    def test_splice_without_overlap(self):
        assert ks.splice("01", "21", base=2) == "0121"

    def test_splice_full_overlap(self):
        assert ks.splice("012", "012", base=2) == "012"

    def test_splice_always_valid(self):
        import itertools

        strings = [ks.unrank(i, 3) for i in range(ks.space_size(2, 3))]
        for first, second in itertools.product(strings[:6], strings[:6]):
            assert ks.is_kautz_string(ks.splice(first, second), base=2)
