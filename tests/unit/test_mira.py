"""Unit tests for MIRA multi-attribute range-query processing."""

from __future__ import annotations

import math

import pytest

from repro.core.armada import ArmadaSystem
from repro.core.errors import ArmadaError, QueryError
from repro.sim.rng import DeterministicRNG


def expected_matches(records, ranges):
    return sorted(
        record
        for record in records
        if all(low <= value <= high for value, (low, high) in zip(record, ranges))
    )


class TestMiraExactness:
    def test_returns_exactly_matching_records(self, multi_system):
        records = multi_system.multi_records
        for ranges in (
            [(10.0, 30.0), (40.0, 70.0)],
            [(0.0, 100.0), (0.0, 100.0)],
            [(95.0, 100.0), (0.0, 5.0)],
            [(50.0, 50.5), (50.0, 50.5)],
        ):
            result = multi_system.multi_range_query(ranges)
            got = sorted(tuple(stored.key) for stored in result.matches)
            assert got == expected_matches(records, ranges)

    def test_destinations_superset_of_match_owners(self, multi_system):
        ranges = [(20.0, 40.0), (20.0, 40.0)]
        result = multi_system.multi_range_query(ranges)
        owners = {
            multi_system.network.owner_id(multi_system.multi_namer.name(stored.key))
            for stored in result.matches
        }
        assert owners <= set(result.destinations)

    def test_destinations_match_oracle(self, multi_system):
        ranges = [(10.0, 35.0), (60.0, 90.0)]
        result = multi_system.multi_range_query(ranges)
        oracle = multi_system.mira.ground_truth_destinations(ranges)
        assert set(result.destinations) == oracle


class TestMiraBounds:
    def test_delay_bounded_by_origin_id_length(self, multi_system):
        rng = DeterministicRNG(55)
        for _ in range(25):
            origin = multi_system.network.random_peer(rng).peer_id
            low0 = rng.uniform(0.0, 60.0)
            low1 = rng.uniform(0.0, 60.0)
            result = multi_system.multi_range_query(
                [(low0, low0 + 40.0), (low1, low1 + 40.0)], origin=origin
            )
            assert result.delay_hops <= len(origin)

    def test_delay_bounded_by_two_log_n_even_for_huge_boxes(self, multi_system):
        bound = 2 * math.log2(multi_system.size) + 1
        result = multi_system.multi_range_query([(0.0, 100.0), (0.0, 100.0)])
        assert result.delay_hops <= bound

    def test_average_delay_below_log_n(self, multi_system):
        rng = DeterministicRNG(56)
        delays = []
        for _ in range(30):
            low0 = rng.uniform(0.0, 80.0)
            low1 = rng.uniform(0.0, 80.0)
            delays.append(
                multi_system.multi_range_query(
                    [(low0, low0 + 20.0), (low1, low1 + 20.0)]
                ).delay_hops
            )
        assert sum(delays) / len(delays) < math.log2(multi_system.size)


class TestMiraValidation:
    def test_unknown_origin_raises(self, multi_system):
        with pytest.raises(QueryError):
            multi_system.mira.execute("0000", [(0.0, 1.0), (0.0, 1.0)])

    def test_wrong_dimension_count_raises(self, multi_system):
        with pytest.raises(QueryError):
            multi_system.multi_range_query([(0.0, 1.0)])

    def test_inverted_range_raises(self, multi_system):
        with pytest.raises(QueryError):
            multi_system.multi_range_query([(10.0, 5.0), (0.0, 1.0)])

    def test_system_without_multi_config_raises(self):
        system = ArmadaSystem(num_peers=16, seed=1)
        with pytest.raises(ArmadaError):
            system.multi_range_query([(0.0, 1.0)])
        with pytest.raises(ArmadaError):
            system.insert_multi((1.0, 2.0))

    def test_forwarding_steps_follow_edges(self, multi_system):
        result = multi_system.multi_range_query([(30.0, 50.0), (30.0, 50.0)])
        for sender, receiver, _hop in result.forwarding_steps:
            assert receiver in multi_system.network.out_neighbors(sender)

    def test_single_attribute_objects_ignored_by_multi_query(self):
        system = ArmadaSystem(
            num_peers=32,
            seed=7,
            attribute_interval=(0.0, 100.0),
            attribute_intervals=((0.0, 100.0), (0.0, 100.0)),
        )
        system.insert(50.0, payload="single")
        system.insert_multi((50.0, 50.0), payload="multi")
        result = system.multi_range_query([(0.0, 100.0), (0.0, 100.0)])
        assert [stored.value for stored in result.matches] == ["multi"]
