"""Unit tests for Multiple_hash, boxes and the multi-attribute namer."""

from __future__ import annotations

import pytest

from repro.core.errors import NamingError, QueryError
from repro.core.multiple_hash import Box, MultiAttributeNamer, multiple_hash
from repro.core.partition_tree import Interval
from repro.kautz import strings as ks


class TestBox:
    def test_contains_point(self):
        box = Box([Interval(0, 10), Interval(0, 5)])
        assert box.contains((3, 4))
        assert box.contains((0, 0))
        assert not box.contains((11, 1))
        assert not box.contains((3, 6))

    def test_contains_wrong_dimensionality_raises(self):
        box = Box([Interval(0, 10)])
        with pytest.raises(NamingError):
            box.contains((1, 2))

    def test_intersects(self):
        first = Box([Interval(0, 10), Interval(0, 10)])
        second = Box([Interval(5, 15), Interval(9, 20)])
        third = Box([Interval(11, 15), Interval(0, 10)])
        assert first.intersects(second)
        assert not first.intersects(third)

    def test_intersects_dimension_mismatch_raises(self):
        with pytest.raises(NamingError):
            Box([Interval(0, 1)]).intersects(Box([Interval(0, 1), Interval(0, 1)]))

    def test_replace(self):
        box = Box([Interval(0, 10), Interval(0, 10)])
        replaced = box.replace(1, Interval(2, 3))
        assert replaced.intervals[1].low == 2
        assert box.intervals[1].low == 0  # original untouched

    def test_empty_box_rejected(self):
        with pytest.raises(NamingError):
            Box([])


class TestMultipleHash:
    def setup_method(self):
        self.intervals = ((0.0, 100.0), (0.0, 10.0))
        self.namer = MultiAttributeNamer(intervals=self.intervals, length=10)

    def test_function_and_namer_agree(self):
        values = (30.0, 7.0)
        assert multiple_hash(values, self.intervals, 10) == self.namer.name(values)

    def test_output_valid_kautz_string(self):
        object_id = self.namer.name((55.0, 5.5))
        assert len(object_id) == 10
        assert ks.is_kautz_string(object_id, base=2)

    def test_wrong_dimensionality_raises(self):
        with pytest.raises(NamingError):
            self.namer.name((1.0,))

    def test_value_outside_space_raises(self):
        with pytest.raises(NamingError):
            self.namer.name((200.0, 5.0))

    def test_box_for_label_contains_named_value(self):
        values = (42.0, 3.3)
        object_id = self.namer.name(values)
        assert self.namer.box_for_label(object_id).contains(values)
        assert self.namer.box_for_label(object_id[:4]).contains(values)

    def test_box_for_root_is_whole_space(self):
        box = self.namer.box_for_label("")
        assert box.intervals[0].low == 0.0
        assert box.intervals[0].high == 100.0
        assert box.intervals[1].high == 10.0

    def test_partial_order_preserving(self):
        """Definition 4: v1 <= v2 (coordinate-wise) implies F(v1) <= F(v2)."""
        pairs = [
            ((10.0, 1.0), (20.0, 2.0)),
            ((0.0, 0.0), (100.0, 10.0)),
            ((33.0, 4.0), (33.0, 9.0)),
            ((5.0, 9.0), (80.0, 9.0)),
        ]
        for smaller, larger in pairs:
            assert self.namer.name(smaller) <= self.namer.name(larger)

    def test_round_robin_splitting(self):
        # Level 0 splits attribute 0, level 1 splits attribute 1: after two
        # symbols the first attribute has been split once (into thirds) and
        # the second once (into halves).
        box = self.namer.box_for_label("01")
        assert box.intervals[0].width == pytest.approx(100.0 / 3.0)
        assert box.intervals[1].width == pytest.approx(5.0)

    def test_invalid_construction(self):
        with pytest.raises(NamingError):
            MultiAttributeNamer(intervals=[], length=8)
        with pytest.raises(NamingError):
            MultiAttributeNamer(intervals=[(0.0, 0.0)], length=8)
        with pytest.raises(NamingError):
            MultiAttributeNamer(intervals=[(0.0, 1.0)], length=0)


class TestQueries:
    def setup_method(self):
        self.namer = MultiAttributeNamer(intervals=((0.0, 100.0), (0.0, 100.0)), length=12)

    def test_query_box_validation(self):
        with pytest.raises(QueryError):
            self.namer.query_box([(0.0, 10.0)])
        with pytest.raises(QueryError):
            self.namer.query_box([(10.0, 0.0), (0.0, 10.0)])

    def test_query_box_clamps(self):
        box = self.namer.query_box([(-10.0, 50.0), (90.0, 200.0)])
        assert box.intervals[0].low == 0.0
        assert box.intervals[1].high == 100.0

    def test_corner_ids_ordered(self):
        low_id, high_id = self.namer.corner_ids([(10.0, 40.0), (20.0, 60.0)])
        assert low_id <= high_id

    def test_matches(self):
        ranges = [(10.0, 40.0), (20.0, 60.0)]
        assert self.namer.matches((15.0, 30.0), ranges)
        assert not self.namer.matches((45.0, 30.0), ranges)

    def test_label_intersects_query(self):
        ranges = [(10.0, 40.0), (20.0, 60.0)]
        matching_label = self.namer.name((20.0, 30.0))[:6]
        assert self.namer.label_intersects_query(matching_label, ranges)
        far_label = self.namer.name((99.0, 99.0))
        assert not self.namer.label_intersects_query(far_label, ranges)
