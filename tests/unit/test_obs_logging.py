"""Unit tests for the structured-logging plane (repro.obs.logs)."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.logs import ROOT_LOGGER, configure_logging, get_logger


@pytest.fixture(autouse=True)
def reset_repro_logging():
    """Leave the global ``repro`` logger pristine after each test."""
    root = logging.getLogger(ROOT_LOGGER)
    saved = (list(root.handlers), root.level, root.propagate)
    yield
    for handler in list(root.handlers):
        root.removeHandler(handler)
    for handler in saved[0]:
        root.addHandler(handler)
    root.setLevel(saved[1])
    root.propagate = saved[2]


class TestConfigure:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("chatty")

    def test_idempotent_no_handler_stacking(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        configure_logging("info", stream=stream)
        get_logger("gateway").info("once")
        assert stream.getvalue().count("once") == 1

    def test_level_threshold(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        get_logger("gateway").info("hidden")
        get_logger("gateway").warning("shown")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "shown" in output

    def test_subsystem_logger_name(self):
        assert get_logger("cluster").name == "repro.cluster"
        assert get_logger().name == "repro"


class TestJsonMode:
    def test_one_object_per_line_with_core_keys(self):
        stream = io.StringIO()
        configure_logging("info", json_mode=True, stream=stream)
        get_logger("serve").info("gateway up")
        payload = json.loads(stream.getvalue().strip())
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.serve"
        assert payload["message"] == "gateway up"
        assert isinstance(payload["ts"], float)

    def test_extras_ride_along_for_trace_correlation(self):
        stream = io.StringIO()
        configure_logging("info", json_mode=True, stream=stream)
        get_logger("gateway").info(
            "query done", extra={"trace_id": "pira-7", "hops": 3}
        )
        payload = json.loads(stream.getvalue().strip())
        assert payload["trace_id"] == "pira-7"
        assert payload["hops"] == 3

    def test_exception_info_serialised(self):
        stream = io.StringIO()
        configure_logging("info", json_mode=True, stream=stream)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("gateway").exception("failed")
        payload = json.loads(stream.getvalue().strip())
        assert "RuntimeError: boom" in payload["exc_info"]
