"""Unit tests for the metric registry and Prometheus exposition."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HOP_BUCKETS,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("frames_total", "help")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_negative_increment_rejected(self):
        counter = Counter("frames_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = Counter("frames_total", "help", ("encoding",))
        json_child = counter.child("json")
        json_child.inc()
        json_child.inc()
        counter.inc(1, "binary")
        assert counter.value("json") == 2
        assert counter.value("binary") == 1

    def test_render_prometheus_text(self):
        counter = Counter("repro_frames_total", "Frames written", ("encoding",))
        counter.inc(3, "json")
        text = "\n".join(counter.render())
        assert "# HELP repro_frames_total Frames written" in text
        assert "# TYPE repro_frames_total counter" in text
        assert 'repro_frames_total{encoding="json"} 3' in text


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("in_flight", "help")
        gauge.set(4)
        gauge.add(-1)
        assert gauge.value() == 3

    def test_callback_read_at_scrape_time(self):
        depth = {"value": 0}
        gauge = Gauge("queue_depth", "help")
        gauge.set_callback(lambda: float(depth["value"]))
        depth["value"] = 7
        assert "queue_depth 7" in "\n".join(gauge.render())


class TestHistogram:
    def test_observe_buckets_cumulative(self):
        histogram = Histogram("hops", (1, 2, 4), "help")
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert counts["1"] == 1
        assert counts["2"] == 2
        assert counts["4"] == 3
        assert counts["+Inf"] == 4
        assert histogram.count == 4
        assert histogram.total == pytest.approx(105.0)

    def test_render_has_bucket_sum_count(self):
        histogram = Histogram("repro_latency_seconds", (0.1, 1.0), "help")
        histogram.observe(0.05)
        text = "\n".join(histogram.render())
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_latency_seconds_sum 0.05" in text
        assert "repro_latency_seconds_count 1" in text

    def test_default_bucket_sets_are_sorted(self):
        assert list(HOP_BUCKETS) == sorted(HOP_BUCKETS)
        assert list(LATENCY_BUCKETS_S) == sorted(LATENCY_BUCKETS_S)


class TestRegistry:
    def test_namespace_prefix(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", "help").inc()
        assert "repro_frames_total 1" in registry.render()

    def test_lazy_get_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_render_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(1)
        assert registry.render().endswith("\n")

    def test_snapshot_flattens_histograms_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", "h", ("encoding",)).inc(2, "json")
        registry.histogram("latency_seconds", (0.1, 1.0)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["repro_frames_total{json}"] == 2.0
        assert snapshot["repro_latency_seconds_count"] == 1.0
        assert snapshot["repro_latency_seconds_sum"] == 0.5

    def test_register_callback_gauge(self):
        registry = MetricsRegistry()
        registry.register_callback("peers", lambda: 8.0, "Peers in the overlay")
        assert "repro_peers 8" in registry.render()

    def test_absorb_sim_metrics(self):
        class FakeSimRegistry:
            def snapshot(self):
                return {"pira.messages": 12, "mira.queries": 3}

        registry = MetricsRegistry()
        registry.absorb_sim_metrics(FakeSimRegistry())
        snapshot = registry.snapshot()
        assert snapshot["repro_sim_pira_messages"] == 12.0
        assert snapshot["repro_sim_mira_queries"] == 3.0
