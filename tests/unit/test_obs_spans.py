"""Unit tests for the span model and its exporters (repro.obs.spans)."""

from __future__ import annotations

import json

from repro.obs.spans import (
    QueryTrace,
    Span,
    Tracer,
    format_span_tree,
    span_from_dict,
    span_to_dict,
    spans_to_chrome,
    spans_to_jsonl,
    trace_from_wire,
)


def build_trace(tracer: Tracer) -> QueryTrace:
    trace = tracer.begin_query("pira", 0.0, query_id=1, origin="012")
    hop = tracer.start_span(trace, "hop 012->101", 0.0, sender="012", receiver="101")
    tracer.end_span(hop, 1.0)
    child = tracer.start_span(trace, "hop 101->210", 1.0, parent_id=hop.span_id)
    tracer.end_span(child, 2.0)
    tracer.finish_query(trace, 2.0)
    return trace


class TestTracerLifecycle:
    def test_begin_start_finish(self):
        tracer = Tracer()
        trace = build_trace(tracer)
        assert trace.done
        assert trace.status == "ok"
        assert len(trace) == 3
        assert trace.root.duration == 2.0
        assert trace.trace_id in tracer.completed
        assert trace.trace_id not in tracer.active

    def test_ids_are_deterministic_counters(self):
        ids_a = [span.span_id for span in build_trace(Tracer()).spans]
        ids_b = [span.span_id for span in build_trace(Tracer()).spans]
        assert ids_a == ids_b == [1, 2, 3]

    def test_take_pops_once(self):
        tracer = Tracer()
        trace = build_trace(tracer)
        assert tracer.take(trace.trace_id) is trace
        assert tracer.take(trace.trace_id) is None

    def test_drain_returns_completion_order(self):
        tracer = Tracer()
        first = build_trace(tracer)
        second = build_trace(tracer)
        assert tracer.drain() == [first, second]
        assert tracer.drain() == []

    def test_finish_closes_open_spans_with_status(self):
        tracer = Tracer()
        trace = tracer.begin_query("pira", 0.0)
        tracer.start_span(trace, "hop a->b", 0.0)
        tracer.finish_query(trace, 5.0, status="deadline")
        assert trace.status == "deadline"
        assert all(span.end == 5.0 for span in trace.spans)
        assert all(span.status == "deadline" for span in trace.spans)

    def test_end_span_is_idempotent(self):
        span = Span("t", 1, None, "hop", 0.0)
        Tracer.end_span(span, 1.0, status="timeout")
        Tracer.end_span(span, 9.0, status="ok")
        assert span.end == 1.0
        assert span.status == "timeout"

    def test_span_cap_counts_dropped(self):
        tracer = Tracer(max_spans_per_trace=2)
        trace = tracer.begin_query("pira", 0.0)
        assert tracer.start_span(trace, "kept", 0.0) is not None
        assert tracer.start_span(trace, "dropped", 0.0) is None
        assert tracer.start_span(trace, "dropped too", 0.0) is None
        assert tracer.dropped == 2
        assert len(trace) == 2

    def test_event_is_zero_duration(self):
        tracer = Tracer()
        trace = tracer.begin_query("pira", 0.0)
        event = tracer.event(trace, "retry", 1.5, attempt=1)
        assert event.duration == 0.0
        assert not event.open


class TestSerialisation:
    def test_span_dict_round_trip(self):
        tracer = Tracer()
        trace = build_trace(tracer)
        for span in trace.spans:
            clone = span_from_dict(json.loads(json.dumps(span_to_dict(span))))
            assert span_to_dict(clone) == span_to_dict(span)

    def test_trace_from_wire_rebuilds_tree(self):
        trace = build_trace(Tracer())
        rebuilt = trace_from_wire(trace.to_wire())
        assert rebuilt.trace_id == trace.trace_id
        assert rebuilt.root.span_id == trace.root.span_id
        assert len(rebuilt) == len(trace)
        assert rebuilt.done

    def test_trace_from_wire_empty(self):
        assert trace_from_wire([]) is None

    def test_jsonl_one_line_per_span(self):
        trace = build_trace(Tracer())
        lines = spans_to_jsonl(trace.spans).splitlines()
        assert len(lines) == len(trace)
        assert all(json.loads(line)["trace_id"] == trace.trace_id for line in lines)


class TestChromeExport:
    def test_complete_events_for_closed_spans(self):
        trace = build_trace(Tracer())
        payload = spans_to_chrome([trace])
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == len(trace)
        root = events[0]
        assert root["ph"] == "X"
        assert root["dur"] == 2.0 * 1_000_000
        assert all(event["tid"] == 1 for event in events)

    def test_parallel_traces_get_distinct_tids(self):
        tracer = Tracer()
        payload = spans_to_chrome([build_trace(tracer), build_trace(tracer)])
        assert {event["tid"] for event in payload["traceEvents"]} == {1, 2}

    def test_instant_events_for_zero_duration(self):
        tracer = Tracer()
        trace = tracer.begin_query("pira", 0.0)
        tracer.event(trace, "drop", 1.0)
        tracer.finish_query(trace, 1.0)
        phases = {e["name"]: e["ph"] for e in spans_to_chrome([trace])["traceEvents"]}
        assert phases["drop"] == "i"

    def test_dropped_spans_surface_in_other_data(self):
        tracer = Tracer(max_spans_per_trace=1)
        trace = tracer.begin_query("pira", 0.0)
        tracer.start_span(trace, "over cap", 0.0)
        tracer.finish_query(trace, 1.0)
        payload = spans_to_chrome([trace], dropped=tracer.dropped)
        assert payload["otherData"] == {"dropped_spans": 1}


class TestFormatTree:
    def test_indented_tree_with_status_markers(self):
        tracer = Tracer()
        trace = tracer.begin_query("pira", 0.0, origin="012")
        hop = tracer.start_span(trace, "hop 012->101", 0.0)
        tracer.end_span(hop, 2.0, status="timeout")
        tracer.start_span(trace, "detour 012->210", 2.0, parent_id=hop.span_id)
        tracer.finish_query(trace, 3.0)
        text = format_span_tree(trace, clock_unit="s")
        lines = text.splitlines()
        assert lines[0].startswith("pira ")
        assert "origin=012" in lines[0]
        assert lines[1].startswith("  hop 012->101")
        assert "!timeout" in lines[1]
        assert lines[2].startswith("    detour 012->210")
