"""Unit tests for the multiprocess sweep orchestrator and the result store.

The load-bearing property is *merge determinism*: a sweep run on a process
pool must produce records — and persisted JSONL bytes — identical to the
serial reference path, job for job.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.figures import records_to_series
from repro.analysis.store import ResultStore, canonical_line, merge_stores
from repro.analysis.tables import format_records
from repro.experiments.common import ExperimentConfig
from repro.experiments.orchestrator import (
    DEFAULT_SCHEMES,
    SCHEME_FACTORIES,
    SweepSpec,
    run_job,
    run_sweep,
)


def tiny_config() -> ExperimentConfig:
    return ExperimentConfig.quick().with_overrides(
        peers=64, queries_per_point=6, objects=120
    )


def tiny_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        schemes=("armada", "dcf-can"),
        range_sizes=(10.0, 120.0),
        network_sizes=(64,),
    )
    kwargs.update(overrides)
    return SweepSpec.from_config(tiny_config(), **kwargs)


class TestGridExpansion:
    def test_jobs_cover_the_cross_product_in_canonical_order(self):
        spec = tiny_spec(network_sizes=(64, 96), replicas=2)
        jobs = spec.jobs()
        assert len(jobs) == 2 * 2 * 2 * 2  # schemes x sizes x ranges x replicas
        assert [job.key() for job in jobs] == sorted(job.key() for job in jobs)

    def test_per_job_seeds_are_stable_and_distinct(self):
        first = {job.key(): job.seed for job in tiny_spec(replicas=2).jobs()}
        second = {job.key(): job.seed for job in tiny_spec(replicas=2).jobs()}
        assert first == second  # stable across expansions
        assert len(set(first.values())) == len(first)  # independent per point

    def test_seeds_depend_on_canonical_not_raw_coordinates(self):
        # int-vs-float grid values must not change the derived seeds: the
        # seed is a function of the job's canonical key(), so any record's
        # point can be re-derived from its recorded coordinates.
        as_ints = tiny_spec(range_sizes=(10, 120), network_sizes=(64,)).jobs()
        as_floats = tiny_spec(range_sizes=(10.0, 120.0), network_sizes=(64.0,)).jobs()
        assert [(job.key(), job.seed) for job in as_ints] == [
            (job.key(), job.seed) for job in as_floats
        ]

    def test_unknown_scheme_is_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            tiny_spec(schemes=("armada", "no-such-scheme"))

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            tiny_spec(replicas=0)

    def test_every_registered_scheme_has_a_picklable_name(self):
        assert set(DEFAULT_SCHEMES) <= set(SCHEME_FACTORIES)


class TestRunJob:
    def test_record_is_flat_json_scalars(self):
        job = tiny_spec().jobs()[0]
        record = run_job(job)
        assert record["sweep_scheme"] == job.scheme
        assert record["network_size"] == job.network_size
        assert record["range_size"] == job.range_size
        assert record["queries"] == 6
        for value in record.values():
            assert isinstance(value, (str, int, float))

    def test_rerunning_a_job_reproduces_its_record(self):
        job = tiny_spec().jobs()[1]
        assert run_job(job) == run_job(job)


class TestMergeDeterminism:
    def test_parallel_records_equal_serial_records(self):
        spec = tiny_spec()
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert serial.records == parallel.records
        assert serial.lines() == parallel.lines()

    def test_parallel_store_bytes_equal_serial_store_bytes(self, tmp_path):
        spec = tiny_spec()
        serial_store = ResultStore(os.fspath(tmp_path / "serial.jsonl"))
        parallel_store = ResultStore(os.fspath(tmp_path / "parallel.jsonl"))
        run_sweep(spec, workers=1, store=serial_store)
        run_sweep(spec, workers=2, store=parallel_store)
        with open(serial_store.path, "rb") as handle:
            serial_bytes = handle.read()
        with open(parallel_store.path, "rb") as handle:
            parallel_bytes = handle.read()
        assert serial_bytes == parallel_bytes
        assert serial_bytes  # the sweep actually wrote something

    def test_progress_callback_sees_records_in_canonical_order(self):
        spec = tiny_spec(schemes=("dcf-can",))
        seen = []
        outcome = run_sweep(spec, workers=1, progress=seen.append)
        assert seen == outcome.records


class TestStore:
    def test_append_load_roundtrip_and_filter(self, tmp_path):
        store = ResultStore(os.fspath(tmp_path / "rows.jsonl"))
        store.append({"scheme": "a", "x": 1.0})
        store.append_many([{"scheme": "b", "x": 1.0}, {"scheme": "a", "x": 2.0}])
        assert len(store) == 3
        assert store.filter(scheme="a") == [{"scheme": "a", "x": 1.0}, {"scheme": "a", "x": 2.0}]
        assert store.schemes() == ["a", "b"]
        store.clear()
        assert not store.exists()
        assert store.load() == []

    def test_canonical_line_is_key_order_independent(self):
        assert canonical_line({"b": 1, "a": 2.5}) == canonical_line({"a": 2.5, "b": 1})

    def test_merge_stores_concatenates_in_order(self, tmp_path):
        first = ResultStore(os.fspath(tmp_path / "first.jsonl"))
        second = ResultStore(os.fspath(tmp_path / "second.jsonl"))
        target = ResultStore(os.fspath(tmp_path / "merged.jsonl"))
        first.append({"n": 1})
        second.append({"n": 2})
        assert merge_stores([first, second], target) == 2
        assert [record["n"] for record in target] == [1, 2]


class TestAnalysisReadback:
    def test_persisted_sweep_renders_tables_and_series(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(os.fspath(tmp_path / "sweep.jsonl"))
        run_sweep(spec, workers=1, store=store)
        records = store.load()

        table = format_records(records, columns=["sweep_scheme", "range_size", "avg_delay"])
        assert "sweep_scheme" in table and "armada" in table

        x_values, series = records_to_series(records, x_key="range_size", y_key="avg_delay")
        assert x_values == [10.0, 120.0]
        assert set(series) == {"armada", "dcf-can"}
        assert all(len(values) == len(x_values) for values in series.values())

    def test_series_mark_unmeasured_grid_points_as_gaps(self):
        from repro.analysis.figures import ascii_chart, series_to_csv

        records = [
            {"sweep_scheme": "a", "x": 1.0, "y": 5.0},
            {"sweep_scheme": "a", "x": 2.0, "y": 6.0},
            {"sweep_scheme": "b", "x": 2.0, "y": 9.0},
        ]
        x_values, series = records_to_series(records, x_key="x", y_key="y")
        # b never measured x=1: the gap stays None, no fabricated value.
        assert series == {"a": [5.0, 6.0], "b": [None, 9.0]}
        csv_text = series_to_csv("x", x_values, series)
        assert "1,5.0000,\n" in csv_text + "\n"  # empty cell for the gap
        assert ascii_chart(x_values, series)  # gaps are drawable (skipped)
