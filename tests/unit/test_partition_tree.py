"""Unit tests for the partition tree P(2, k) and Interval helpers."""

from __future__ import annotations

import pytest

from repro.core.errors import NamingError
from repro.core.partition_tree import Interval, PartitionTree


class TestInterval:
    def test_width_and_contains(self):
        interval = Interval(2.0, 6.0)
        assert interval.width == 4.0
        assert interval.contains(2.0)
        assert interval.contains(6.0)
        assert interval.contains(4.0)
        assert not interval.contains(6.1)

    def test_invalid_interval_raises(self):
        with pytest.raises(NamingError):
            Interval(5.0, 4.0)

    def test_intersects(self):
        assert Interval(0, 2).intersects(Interval(2, 3))
        assert Interval(0, 2).intersects(Interval(1, 5))
        assert not Interval(0, 2).intersects(Interval(2.1, 3))

    def test_subdivide_even_pieces(self):
        pieces = Interval(0.0, 1.0).subdivide(4)
        assert len(pieces) == 4
        assert pieces[0].low == 0.0
        assert pieces[-1].high == 1.0
        for first, second in zip(pieces, pieces[1:]):
            assert first.high == pytest.approx(second.low)
        assert all(piece.width == pytest.approx(0.25) for piece in pieces)

    def test_subdivide_invalid(self):
        with pytest.raises(NamingError):
            Interval(0, 1).subdivide(0)

    def test_clamp(self):
        interval = Interval(0.0, 10.0)
        assert interval.clamp(-1.0) == 0.0
        assert interval.clamp(11.0) == 10.0
        assert interval.clamp(5.0) == 5.0


class TestPartitionTreeStructure:
    def test_root_has_three_children_others_two(self):
        tree = PartitionTree(0.0, 1.0, depth=4)
        assert tree.children_labels("") == ["0", "1", "2"]
        assert tree.children_labels("0") == ["01", "02"]
        assert tree.children_labels("01") == ["010", "012"]

    def test_leaves_are_kautz_space_in_order(self):
        tree = PartitionTree(0.0, 1.0, depth=3)
        leaves = tree.leaf_labels()
        assert len(leaves) == 12
        assert leaves == sorted(leaves)

    def test_children_of_leaf_are_empty(self):
        tree = PartitionTree(0.0, 1.0, depth=3)
        assert tree.children_labels("010") == []

    def test_invalid_parameters(self):
        with pytest.raises(NamingError):
            PartitionTree(0.0, 1.0, depth=0)
        with pytest.raises(NamingError):
            PartitionTree(1.0, 1.0, depth=3)


class TestIntervalForLabel:
    def test_paper_figure3_node_u(self):
        # Figure 3: node U with label 0101 represents [0, 1/24].
        tree = PartitionTree(0.0, 1.0, depth=4)
        interval = tree.interval_for_label("0101")
        assert interval.low == pytest.approx(0.0)
        assert interval.high == pytest.approx(1.0 / 24.0)

    def test_root_children_split_evenly(self):
        tree = PartitionTree(0.0, 1.0, depth=4)
        assert tree.interval_for_label("0").high == pytest.approx(1.0 / 3.0)
        assert tree.interval_for_label("1").low == pytest.approx(1.0 / 3.0)
        assert tree.interval_for_label("2").high == pytest.approx(1.0)

    def test_siblings_tile_parent(self):
        tree = PartitionTree(0.0, 1.0, depth=4)
        parent = tree.interval_for_label("02")
        children = [tree.interval_for_label(child) for child in tree.children_labels("02")]
        assert children[0].low == pytest.approx(parent.low)
        assert children[-1].high == pytest.approx(parent.high)
        assert children[0].high == pytest.approx(children[1].low)

    def test_leaves_tile_whole_interval(self):
        tree = PartitionTree(0.0, 1.0, depth=4)
        leaves = tree.leaf_labels()
        intervals = [tree.interval_for_label(leaf) for leaf in leaves]
        assert intervals[0].low == pytest.approx(0.0)
        assert intervals[-1].high == pytest.approx(1.0)
        for first, second in zip(intervals, intervals[1:]):
            assert first.high == pytest.approx(second.low)

    def test_too_deep_label_raises(self):
        tree = PartitionTree(0.0, 1.0, depth=3)
        with pytest.raises(NamingError):
            tree.interval_for_label("0101")


class TestLabelForValue:
    def test_paper_example_value_01(self):
        # Figure 3: value 0.1 belongs to leaf P with label 0120.
        tree = PartitionTree(0.0, 1.0, depth=4)
        assert tree.label_for_value(0.1) == "0120"

    def test_endpoints(self):
        tree = PartitionTree(0.0, 1.0, depth=4)
        assert tree.label_for_value(0.0) == "0101"
        assert tree.label_for_value(1.0) == "2121"

    def test_value_outside_interval_raises(self):
        tree = PartitionTree(0.0, 1.0, depth=4)
        with pytest.raises(NamingError):
            tree.label_for_value(1.5)

    def test_label_matches_interval(self):
        tree = PartitionTree(0.0, 1000.0, depth=6)
        for value in (0.0, 1.7, 333.3, 500.0, 999.9, 1000.0):
            label = tree.label_for_value(value)
            assert tree.interval_for_label(label).contains(value)

    def test_partial_depth_label(self):
        tree = PartitionTree(0.0, 1.0, depth=6)
        full = tree.label_for_value(0.4)
        partial = tree.label_for_value(0.4, depth=3)
        assert full.startswith(partial)
        assert len(partial) == 3

    def test_requested_depth_beyond_tree_raises(self):
        tree = PartitionTree(0.0, 1.0, depth=3)
        with pytest.raises(NamingError):
            tree.label_for_value(0.4, depth=5)

    def test_monotone_in_value(self):
        tree = PartitionTree(0.0, 1.0, depth=6)
        values = [index / 200 for index in range(201)]
        labels = [tree.label_for_value(value) for value in values]
        assert labels == sorted(labels)

    def test_deep_tree_does_not_crash(self):
        # Depths beyond float resolution must still produce valid labels.
        tree = PartitionTree(0.0, 1.0, depth=80)
        label = tree.label_for_value(0.123456)
        assert len(label) == 80
