"""Unit tests for PIRA single-attribute range-query processing."""

from __future__ import annotations

import math

import pytest

from repro.core.armada import ArmadaSystem
from repro.core.errors import QueryError
from repro.core.pira import PiraExecutor, RangeQueryResult
from repro.core.single_hash import SingleAttributeNamer
from repro.fissione.network import FissioneNetwork
from repro.sim.rng import DeterministicRNG


class TestRangeQueryResult:
    def test_delay_is_max_destination_hop(self):
        result = RangeQueryResult(origin="01", query_id=1)
        result.destinations = {"a": 3, "b": 7, "c": 5}
        assert result.delay_hops == 7

    def test_empty_result_zero_delay(self):
        result = RangeQueryResult(origin="01", query_id=1)
        assert result.delay_hops == 0
        assert result.destination_count == 0
        assert result.mesg_ratio() == 0.0

    def test_mesg_ratio(self):
        result = RangeQueryResult(origin="01", query_id=1)
        result.destinations = {"a": 1, "b": 2}
        result.messages = 10
        assert result.mesg_ratio() == 5.0


class TestPiraExactness:
    def test_reaches_exactly_the_intersecting_peers(self, loaded_system):
        for low, high in ((100.0, 300.0), (0.0, 5.0), (990.0, 1000.0), (499.0, 501.0)):
            result = loaded_system.range_query(low, high)
            truth = loaded_system.pira.ground_truth_destinations(low, high)
            assert set(result.destinations) == truth

    def test_returns_exactly_the_matching_objects(self, loaded_system):
        for low, high in ((100.0, 300.0), (42.0, 58.0), (0.0, 1000.0)):
            result = loaded_system.range_query(low, high)
            expected = sorted(float(v) for v in range(0, 1000, 5) if low <= v <= high)
            assert sorted(result.matching_values()) == expected

    def test_point_query(self, loaded_system):
        result = loaded_system.range_query(250.0, 250.0)
        assert result.matching_values() == [250.0]
        assert result.destination_count >= 1

    def test_empty_range_far_from_data_returns_nothing(self):
        system = ArmadaSystem(num_peers=64, seed=2, attribute_interval=(0.0, 1000.0))
        system.insert_many([1.0, 2.0, 3.0])
        result = system.range_query(900.0, 950.0)
        assert result.matches == []
        assert result.destination_count >= 1  # peers are still responsible for the range

    def test_origin_counts_as_destination_when_it_owns_the_range(self):
        system = ArmadaSystem(num_peers=32, seed=4, attribute_interval=(0.0, 1000.0))
        system.insert_many([float(v) for v in range(0, 1000, 10)])
        # Pick an origin and query a tiny range it owns itself.
        origin = system.network.peer_ids()[0]
        interval = system.single_namer.prefix_interval(origin)
        midpoint = (interval.low + interval.high) / 2
        result = system.range_query(midpoint, midpoint, origin=origin)
        assert origin in result.destinations
        assert result.destinations[origin] == 0


class TestPiraBounds:
    def test_delay_below_frt_height(self, loaded_system):
        rng = DeterministicRNG(77)
        for _ in range(40):
            origin = loaded_system.network.random_peer(rng).peer_id
            low = rng.uniform(0.0, 900.0)
            result = loaded_system.range_query(low, low + rng.uniform(0.0, 100.0), origin=origin)
            assert result.delay_hops <= len(origin)

    def test_delay_bounded_by_two_log_n(self, loaded_system):
        bound = 2 * math.log2(loaded_system.size) + 1
        rng = DeterministicRNG(78)
        for _ in range(40):
            low = rng.uniform(0.0, 700.0)
            result = loaded_system.range_query(low, low + 300.0)
            assert result.delay_hops <= bound

    def test_average_delay_below_log_n(self, loaded_system):
        rng = DeterministicRNG(79)
        delays = []
        for _ in range(60):
            low = rng.uniform(0.0, 950.0)
            delays.append(loaded_system.range_query(low, low + 50.0).delay_hops)
        assert sum(delays) / len(delays) < math.log2(loaded_system.size)

    def test_message_cost_close_to_analysis(self, loaded_system):
        # Section 4.3.2: average message cost about logN + 2n - 2.
        rng = DeterministicRNG(80)
        total_messages = 0
        total_predicted = 0.0
        samples = 60
        for _ in range(samples):
            low = rng.uniform(0.0, 900.0)
            result = loaded_system.range_query(low, low + 100.0)
            total_messages += result.messages
            total_predicted += math.log2(loaded_system.size) + 2 * result.destination_count - 2
        ratio = total_messages / total_predicted
        assert 0.7 < ratio < 1.3

    def test_delay_independent_of_range_size(self, loaded_system):
        rng = DeterministicRNG(81)
        small, large = [], []
        for _ in range(30):
            low = rng.uniform(0.0, 600.0)
            small.append(loaded_system.range_query(low, low + 2.0).delay_hops)
            large.append(loaded_system.range_query(low, low + 300.0).delay_hops)
        # Delay-boundedness: growing the range 150x changes the average delay
        # by at most ~2 hops.
        assert abs(sum(large) / len(large) - sum(small) / len(small)) < 2.0


class TestPiraValidation:
    def test_inverted_range_raises(self, loaded_system):
        with pytest.raises(QueryError):
            loaded_system.range_query(200.0, 100.0)

    def test_unknown_origin_raises(self, loaded_system):
        with pytest.raises(QueryError):
            loaded_system.pira.execute("0000", 1.0, 2.0)

    def test_forwarding_steps_follow_out_neighbor_edges(self, loaded_system):
        result = loaded_system.range_query(400.0, 450.0)
        for sender, receiver, _hop in result.forwarding_steps:
            assert receiver in loaded_system.network.out_neighbors(sender)

    def test_message_count_equals_forwarding_steps(self, loaded_system):
        result = loaded_system.range_query(100.0, 140.0)
        assert result.messages == len(result.forwarding_steps)

    def test_query_ids_are_unique(self, loaded_system):
        first = loaded_system.range_query(10.0, 20.0)
        second = loaded_system.range_query(10.0, 20.0)
        assert first.query_id != second.query_id


class TestStandaloneExecutor:
    def test_executor_builds_own_overlay(self):
        network = FissioneNetwork.build(
            48, DeterministicRNG(5).substream("topology"), object_id_length=20
        )
        namer = SingleAttributeNamer(low=0.0, high=10.0, length=20)
        executor = PiraExecutor(network, namer)
        for value in range(10):
            network.publish(namer.name(float(value)), key=float(value), value=value)
        origin = network.peer_ids()[0]
        result = executor.execute(origin, 2.0, 7.0)
        assert sorted(result.matching_values()) == [2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
        assert set(result.destinations) == executor.ground_truth_destinations(2.0, 7.0)
