"""Unit tests for the concurrent query engine."""

from __future__ import annotations

import pytest

from repro.core.armada import ArmadaSystem
from repro.engine import CompletedQuery, EngineReport, QueryEngine, QueryJob, offered_load
from repro.sim.metrics import QueryTracker
from repro.sim.rng import DeterministicRNG
from repro.workloads.arrivals import ChurnEvent, periodic_churn, poisson_arrival_times


def build_system(num_peers: int = 96, seed: int = 5, multi: bool = False) -> ArmadaSystem:
    intervals = ((0.0, 1000.0), (0.0, 1000.0)) if multi else None
    system = ArmadaSystem(
        num_peers=num_peers,
        seed=seed,
        attribute_interval=(0.0, 1000.0),
        attribute_intervals=intervals,
    )
    system.insert_many([float(value) for value in range(0, 1000, 10)])
    return system


def make_jobs(system: ArmadaSystem, count: int, rate: float = 4.0, seed: int = 11):
    rng = DeterministicRNG(seed)
    arrivals = poisson_arrival_times(rng.substream("arrivals"), rate, count)
    origin_rng = rng.substream("origins")
    jobs = []
    for arrival in arrivals:
        origin = system.network.random_peer(origin_rng).peer_id
        low = origin_rng.uniform(0.0, 900.0)
        jobs.append(QueryJob(arrival=arrival, origin=origin, low=low, high=low + 60.0))
    return jobs


class TestOpenLoop:
    def test_all_jobs_complete(self):
        system = build_system()
        engine = QueryEngine(system)
        jobs = make_jobs(system, 40)
        report = engine.run_open_loop(jobs)
        assert report.queries == 40
        assert report.started == 40
        assert engine.in_flight == 0

    def test_queries_overlap_in_flight(self):
        """At a high arrival rate, many queries must be in flight at once."""
        system = build_system()
        engine = QueryEngine(system)
        peak = 0

        def watch(_record: CompletedQuery) -> None:
            nonlocal peak
            peak = max(peak, engine.in_flight)

        engine.on_query_complete(watch)
        jobs = [QueryJob(arrival=0.0, low=100.0 + i, high=300.0 + i) for i in range(20)]
        engine.run_open_loop(jobs)
        # all 20 arrive at t=0; at the first completion 19 others are in flight
        assert peak >= 10

    def test_latency_equals_hop_delay_in_open_loop(self):
        """With hop latency 1.0 and no queueing, sojourn time == delay hops."""
        system = build_system()
        engine = QueryEngine(system)
        jobs = make_jobs(system, 25)
        report = engine.run_open_loop(jobs)
        for record in report.completed:
            assert record.latency == pytest.approx(float(record.result.delay_hops))

    def test_report_counters(self):
        system = build_system()
        engine = QueryEngine(system)
        report = engine.run_open_loop(make_jobs(system, 10))
        assert report.messages > 0
        assert report.events >= report.messages
        assert report.throughput > 0
        assert set(report.latency_percentiles) == {"p50", "p95", "p99"}
        summary = report.as_dict()
        assert summary["queries"] == 10.0
        assert "latency_p95" in summary
        assert "delay_p99" in summary
        assert "queries completed" in report.format()

    def test_past_arrivals_launch_immediately(self):
        system = build_system()
        system.overlay.simulator.schedule_at(5.0, lambda: None)
        system.overlay.run()
        engine = QueryEngine(system)
        report = engine.run_open_loop([QueryJob(arrival=0.0, low=10.0, high=80.0)])
        assert report.queries == 1
        assert report.completed[0].started_at >= 5.0


class TestClosedLoop:
    def test_all_jobs_complete(self):
        system = build_system()
        engine = QueryEngine(system)
        jobs = make_jobs(system, 30)
        report = engine.run_closed_loop(jobs, concurrency=4)
        assert report.queries == 30

    def test_concurrency_bound_respected(self):
        system = build_system()
        engine = QueryEngine(system)
        peaks = []
        engine.on_query_complete(lambda _record: peaks.append(engine.in_flight))
        engine.run_closed_loop(make_jobs(system, 20), concurrency=3)
        # just before each completion at most `concurrency` were in flight
        assert max(peaks) <= 3

    def test_invalid_concurrency_rejected(self):
        engine = QueryEngine(build_system())
        with pytest.raises(ValueError):
            engine.run_closed_loop([], concurrency=0)

    def test_synchronously_completing_jobs_do_not_overflow_stack(self):
        """Zero-message queries (origin owns the range) refill via the
        scheduler, not recursion — 3000 of them must not hit the limit."""
        system = build_system(num_peers=32)
        origin = system.network.peer_ids()[0]
        interval = system.single_namer.prefix_interval(origin)
        midpoint = (interval.low + interval.high) / 2
        jobs = [
            QueryJob(arrival=0.0, origin=origin, low=midpoint, high=midpoint)
            for _ in range(3000)
        ]
        report = QueryEngine(system).run_closed_loop(jobs, concurrency=1)
        assert report.queries == 3000
        assert all(record.result.messages == 0 for record in report.completed)


class TestMixedAndMulti:
    def test_mixed_pira_mira_jobs(self):
        system = build_system(multi=True)
        engine = QueryEngine(system)
        jobs = []
        for index in range(12):
            low = 50.0 * index
            if index % 2 == 0:
                jobs.append(QueryJob(arrival=float(index), low=low, high=low + 40.0))
            else:
                jobs.append(
                    QueryJob(
                        arrival=float(index),
                        ranges=((low, low + 100.0), (200.0, 600.0)),
                    )
                )
        report = engine.run_open_loop(jobs)
        assert report.queries == 12
        kinds = {record.job.kind for record in report.completed}
        assert kinds == {"pira", "mira"}

    def test_multi_job_without_intervals_raises(self):
        system = build_system(multi=False)
        engine = QueryEngine(system)
        engine.submit(QueryJob(arrival=0.0, ranges=((0.0, 10.0), (0.0, 10.0))))
        from repro.core.errors import ArmadaError

        with pytest.raises(ArmadaError):
            system.overlay.run()


class TestChurn:
    def test_queries_complete_under_churn(self):
        system = build_system(num_peers=128)
        engine = QueryEngine(system)
        jobs = make_jobs(system, 40, rate=3.0)
        horizon = max(job.arrival for job in jobs)
        engine.schedule_churn(periodic_churn(period=2.0, until=horizon, joins=2, leaves=2))
        report = engine.run_open_loop(jobs)
        assert report.queries == 40
        assert engine.in_flight == 0

    def test_churn_changes_membership(self):
        system = build_system(num_peers=64)
        engine = QueryEngine(system)
        engine.schedule_churn([ChurnEvent(time=1.0, kind="join", count=5)])
        engine.run()
        assert system.size == 69

    def test_unknown_churn_kind_rejected(self):
        with pytest.raises(ValueError):
            ChurnEvent(time=0.0, kind="flap")

    def test_apply_churn_rejects_unknown_kind(self):
        """`_apply_churn` itself validates, even for events that bypassed
        ChurnEvent's constructor (e.g. hand-built schedule entries)."""
        from types import SimpleNamespace

        engine = QueryEngine(build_system(num_peers=64))
        with pytest.raises(ValueError, match="unknown churn kind"):
            engine._apply_churn(SimpleNamespace(time=0.0, kind="flap", count=1))

    def test_departing_peer_holding_outstanding_message(self):
        """Churn × in-flight: depart a peer that currently holds an
        outstanding PIRA message.  The message becomes undeliverable, is
        drop-accounted, and the query completes with a subset of results
        instead of hanging."""
        system = build_system(num_peers=128)
        executor = system.pira
        origin = system.network.peer_ids()[0]
        done = []
        result = executor.start(origin, 100.0, 400.0, on_complete=done.append)
        assert executor.active_queries == 1 and not done
        # Pick the receiver of an in-flight first-hop message and depart it
        # abruptly (overlay-level, before the DHT merges its zone — a
        # graceful `leave` relabels peers, so the raw unregister is the
        # deterministic way to strand exactly this receiver's messages).
        receivers = {receiver for _s, receiver, _h in result.forwarding_steps}
        victim = sorted(receivers)[0]
        system.overlay.unregister(victim)
        system.overlay.run()
        assert done and done[0] is result
        assert executor.active_queries == 0
        assert victim not in result.destinations
        assert result.resilience.drops >= 1
        assert not result.complete  # the loss is reported, not hidden

    def test_departing_mira_receiver_mid_flight(self):
        system = build_system(num_peers=128, multi=True)
        executor = system.mira
        origin = system.network.peer_ids()[0]
        done = []
        result = executor.start(
            origin, ((100.0, 500.0), (0.0, 900.0)), on_complete=done.append
        )
        receivers = {receiver for _s, receiver, _h in result.forwarding_steps}
        victim = sorted(receivers)[-1]
        system.overlay.unregister(victim)
        system.overlay.run()
        assert done and done[0] is result
        assert executor.active_queries == 0
        assert victim not in result.destinations

    def test_mass_departure_during_engine_run_never_hangs(self):
        """Remove most of the network while queries are in flight: every
        query must still complete (possibly partially), with the losses
        surfaced in the report's dropped column."""
        system = build_system(num_peers=128)
        engine = QueryEngine(system)
        jobs = make_jobs(system, 30, rate=10.0)
        engine.submit_many(jobs)
        system.overlay.simulator.schedule_at(2.0, lambda: system.remove_peers(100))
        report = engine.run()
        assert report.queries == 30
        assert report.stalled == 0
        assert engine.in_flight == 0
        assert report.dropped > 0

    def test_departed_peers_are_unregistered_from_overlay(self):
        """Sustained churn must not leak overlay node registrations."""
        system = build_system(num_peers=64)
        for _ in range(20):
            system.add_peers(2)
            system.remove_peers(2)
        assert system.size == 64
        assert system.overlay.node_count == system.size


class TestResumableExecutors:
    def test_active_queries_tracked(self):
        system = build_system()
        result = system.pira.start(system.random_peer_id(), 100.0, 300.0)
        assert system.pira.active_queries == 1
        system.overlay.run()
        assert system.pira.active_queries == 0
        assert result.destination_count >= 1

    def test_duplicate_query_id_rejected(self):
        from repro.core.errors import QueryError

        system = build_system()
        system.pira.start(system.random_peer_id(), 100.0, 300.0, query_id=77)
        with pytest.raises(QueryError):
            system.pira.start(system.random_peer_id(), 100.0, 300.0, query_id=77)
        system.overlay.run()

    def test_on_complete_fires_exactly_once(self):
        system = build_system()
        completions = []
        system.pira.start(
            system.random_peer_id(), 0.0, 500.0, on_complete=completions.append
        )
        system.overlay.run()
        assert len(completions) == 1
        assert completions[0].destination_count >= 1


class TestQueryTracker:
    def test_duplicate_start_rejected(self):
        tracker = QueryTracker()
        tracker.start(1, 0.0)
        with pytest.raises(ValueError):
            tracker.start(1, 1.0)

    def test_complete_unknown_rejected(self):
        with pytest.raises(ValueError):
            QueryTracker().complete(9, 1.0)

    def test_latency_and_throughput(self):
        tracker = QueryTracker()
        tracker.start("a", 0.0)
        tracker.start("b", 1.0)
        assert tracker.in_flight == 2
        assert tracker.complete("a", 4.0, delay_hops=4) == 4.0
        assert tracker.complete("b", 5.0, delay_hops=4) == 4.0
        assert tracker.in_flight == 0
        assert tracker.makespan == 5.0
        assert tracker.throughput() == pytest.approx(0.4)
        summary = tracker.as_dict()
        assert summary["completed"] == 2.0
        assert summary["latency_p50"] == 4.0


class TestOfferedLoad:
    def test_rate_recovered_from_uniform_arrivals(self):
        jobs = [QueryJob(arrival=float(i) / 2.0) for i in range(11)]
        assert offered_load(jobs) == pytest.approx(2.0)

    def test_degenerate_batches(self):
        assert offered_load([]) == 0.0
        assert offered_load([QueryJob(arrival=1.0)]) == 0.0
