"""Unit tests for the shared range-query scheme interface helpers."""

from __future__ import annotations

import pytest

from repro.rangequery.base import (
    AttributeSpace,
    QueryMeasurement,
    RangeQueryScheme,
    normalise,
    record_query,
)


class TestQueryMeasurement:
    def test_mesg_ratio(self):
        measurement = QueryMeasurement(delay_hops=5, messages=20, destination_peers=10)
        assert measurement.mesg_ratio() == 2.0

    def test_mesg_ratio_zero_destinations(self):
        assert QueryMeasurement(1, 5, 0).mesg_ratio() == 0.0

    def test_incre_ratio(self):
        measurement = QueryMeasurement(delay_hops=5, messages=30, destination_peers=11)
        assert measurement.incre_ratio(log_n=10.0) == pytest.approx(2.0)

    def test_incre_ratio_single_destination(self):
        assert QueryMeasurement(1, 5, 1).incre_ratio(10.0) == 0.0

    def test_record_query_coerces_types(self):
        measurement = record_query(3.0, 7.0, 2.0, matches=[1.0, 2.0])
        assert measurement.delay_hops == 3
        assert measurement.messages == 7
        assert measurement.destination_peers == 2
        assert measurement.matches == [1.0, 2.0]


class TestAttributeSpace:
    def test_normalise_and_clamp(self):
        space = AttributeSpace(0.0, 1000.0)
        assert space.normalise(0.0) == 0.0
        assert space.normalise(500.0) == pytest.approx(0.5)
        assert space.normalise(1000.0) < 1.0
        assert space.clamp(-5.0) == 0.0
        assert space.clamp(1200.0) == 1000.0
        assert space.span() == 1000.0

    def test_normalise_function_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            normalise(1.0, 5.0, 5.0)


class TestSchemeInterface:
    def test_describe_and_defaults(self):
        class Dummy(RangeQueryScheme):
            name = "dummy"
            underlying_degree = "4"
            delay_bounded = True

            def build(self, num_peers, seed):
                self._size = num_peers

            def load(self, values):
                pass

            def query(self, low, high):
                return record_query(1, 1, 1)

            @property
            def size(self):
                return getattr(self, "_size", 0)

        scheme = Dummy()
        scheme.build(1024, seed=1)
        description = scheme.describe()
        assert description["scheme"] == "dummy"
        assert description["delay_bounded"] is True
        assert scheme.log_size() == pytest.approx(10.0)
        with pytest.raises(NotImplementedError):
            scheme.load_multi([(1.0, 2.0)])
        with pytest.raises(NotImplementedError):
            scheme.query_multi([(1.0, 2.0)])
