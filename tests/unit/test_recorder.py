"""Unit tests for the flight recorder (repro.obs.recorder)."""

from __future__ import annotations

import sys

import pytest

from repro.obs.recorder import (
    DUMP_MAGIC,
    DumpError,
    FlightRecorder,
    load_dump,
    write_dump,
)


def ticking_clock():
    """A deterministic stand-in for time.monotonic."""
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += 0.25
        return state["now"]

    return clock


class TestRing:
    def test_seq_is_globally_monotonic(self):
        recorder = FlightRecorder(capacity=8, clock=ticking_clock())
        seqs = [recorder.record("x", i=i) for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert [ev["seq"] for ev in recorder.events()] == seqs

    def test_bounded_ring_evicts_oldest_first(self):
        recorder = FlightRecorder(capacity=3, clock=ticking_clock())
        for i in range(10):
            recorder.record("x", i=i)
        assert len(recorder) == 3
        assert recorder.evicted == 7
        assert recorder.total_recorded == 10
        # The window is the newest events, and seq survives eviction.
        assert [ev["seq"] for ev in recorder.events()] == [8, 9, 10]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_events_is_a_snapshot(self):
        recorder = FlightRecorder(clock=ticking_clock())
        recorder.record("x")
        snapshot = recorder.events()
        recorder.record("y")
        assert len(snapshot) == 1


class TestDumpFormat:
    def test_round_trip_preserves_events_and_appends_trailer(self, tmp_path):
        recorder = FlightRecorder(capacity=4, clock=ticking_clock())
        for i in range(6):
            recorder.record("frame", index=i, nested={"a": [1, 2.5, "z"]})
        path = recorder.dump(str(tmp_path / "flight.dump"), reason="unit")
        events = load_dump(path)
        # 4 ring events + 1 synthetic trailer.
        assert len(events) == 5
        assert events[:-1] == recorder.events()
        trailer = events[-1]
        assert trailer["type"] == "dump"
        assert trailer["reason"] == "unit"
        assert trailer["events"] == 4
        assert trailer["evicted"] == 2

    def test_file_starts_with_magic(self, tmp_path):
        recorder = FlightRecorder(clock=ticking_clock())
        recorder.record("x")
        path = recorder.dump(str(tmp_path / "flight.dump"))
        with open(path, "rb") as handle:
            assert handle.read(len(DUMP_MAGIC)) == DUMP_MAGIC

    def test_bad_magic_is_rejected(self, tmp_path):
        path = tmp_path / "not-a-dump"
        path.write_bytes(b"PNG\x00 definitely not a dump")
        with pytest.raises(DumpError, match="bad magic"):
            load_dump(str(path))

    def test_missing_file_is_a_dump_error(self, tmp_path):
        with pytest.raises(DumpError, match="cannot read"):
            load_dump(str(tmp_path / "nope.dump"))

    def test_truncated_dump_is_rejected(self, tmp_path):
        recorder = FlightRecorder(clock=ticking_clock())
        for i in range(4):
            recorder.record("x", i=i)
        path = recorder.dump(str(tmp_path / "flight.dump"))
        blob = open(path, "rb").read()
        clipped = tmp_path / "clipped.dump"
        clipped.write_bytes(blob[:-3])
        with pytest.raises(DumpError, match="truncated"):
            load_dump(str(clipped))

    def test_edit_round_trip_via_write_dump(self, tmp_path):
        """The tamper workflow the divergence tests rely on: load, edit
        one field, write back, load again — everything else unchanged."""
        recorder = FlightRecorder(clock=ticking_clock())
        for i in range(3):
            recorder.record("deliver", hop=i)
        original = str(tmp_path / "a.dump")
        recorder.dump(original)
        events = load_dump(original)
        events[1]["hop"] = 99
        edited = str(tmp_path / "b.dump")
        write_dump(events, edited)
        reloaded = load_dump(edited)
        assert reloaded[1]["hop"] == 99
        assert reloaded[0] == events[0]
        assert reloaded[-1] == events[-1]

    def test_dump_creates_the_target_directory(self, tmp_path):
        recorder = FlightRecorder(clock=ticking_clock())
        recorder.record("x")
        path = recorder.dump(str(tmp_path / "deep" / "er" / "flight.dump"))
        assert load_dump(path)


class TestTriggers:
    def test_default_path_needs_an_installed_directory(self):
        recorder = FlightRecorder(clock=ticking_clock())
        with pytest.raises(ValueError, match="no dump path"):
            recorder.dump()

    def test_install_names_sequential_dumps(self, tmp_path):
        recorder = FlightRecorder(clock=ticking_clock())
        recorder.install(str(tmp_path), handle_signal=False, handle_excepthook=False)
        recorder.record("x")
        first = recorder.dump()
        second = recorder.dump()
        assert first.endswith("flight-1.dump")
        assert second.endswith("flight-2.dump")
        assert recorder.dumps_written == 2

    def test_excepthook_chains_and_dumps(self, tmp_path):
        recorder = FlightRecorder(clock=ticking_clock())
        recorder.record("x")
        seen = []
        previous_hook = sys.excepthook
        sys.excepthook = lambda *exc_info: seen.append(exc_info)
        try:
            recorder.install(str(tmp_path), handle_signal=False)
            try:
                raise RuntimeError("boom")
            except RuntimeError:
                sys.excepthook(*sys.exc_info())
            recorder.uninstall()
            assert sys.excepthook not in (recorder._on_exception,)
        finally:
            sys.excepthook = previous_hook
        # The previous hook still ran, and the dump recorded the crash.
        assert len(seen) == 1
        events = load_dump(str(tmp_path / "flight-1.dump"))
        crash = [ev for ev in events if ev["type"] == "crash"]
        assert crash and crash[0]["error"] == "RuntimeError"
        assert crash[0]["message"] == "boom"
        assert events[-1]["reason"] == "exception"
