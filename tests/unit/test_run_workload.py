"""Unit tests for the batched ``run_workload`` scheme driver."""

from __future__ import annotations

import pytest

from repro.rangequery.armada_scheme import ArmadaScheme
from repro.rangequery.base import AttributeSpace, WorkloadReport
from repro.rangequery.dcf_can import DcfCanScheme
from repro.workloads.arrivals import uniform_arrival_times

QUERIES = [(100.0 * i, 100.0 * i + 80.0) for i in range(8)]


def build(scheme):
    scheme.build(96, seed=5)
    scheme.load([float(value) for value in range(0, 1000, 25)])
    return scheme


class TestFlowLevelDefault:
    def test_sequential_batch(self):
        scheme = build(DcfCanScheme(space=AttributeSpace()))
        report = scheme.run_workload(QUERIES)
        assert report.queries == len(QUERIES)
        assert report.scheme == scheme.name
        assert report.makespan == pytest.approx(sum(report.latencies))
        assert report.throughput() > 0
        assert set(report.latency_percentiles()) == {"p50", "p95", "p99"}

    def test_open_loop_batch(self):
        scheme = build(DcfCanScheme(space=AttributeSpace()))
        arrivals = uniform_arrival_times(rate=1.0, count=len(QUERIES))
        report = scheme.run_workload(QUERIES, arrivals=arrivals)
        # makespan covers first arrival to last completion
        assert report.makespan >= max(report.latencies)
        assert report.messages == sum(m.messages for m in report.measurements)

    def test_mismatched_arrivals_rejected(self):
        scheme = build(DcfCanScheme(space=AttributeSpace()))
        with pytest.raises(ValueError):
            scheme.run_workload(QUERIES, arrivals=[0.0])

    def test_empty_batch(self):
        scheme = build(DcfCanScheme(space=AttributeSpace()))
        report = scheme.run_workload([])
        assert report.queries == 0
        assert report.throughput() == 0.0


class TestArmadaConcurrentOverride:
    def test_concurrent_batch_matches_sequential_measurements(self):
        concurrent = build(ArmadaScheme(space=AttributeSpace()))
        arrivals = uniform_arrival_times(rate=5.0, count=len(QUERIES))
        report = concurrent.run_workload(QUERIES, arrivals=arrivals)
        assert isinstance(report, WorkloadReport)
        assert report.queries == len(QUERIES)

        sequential = build(ArmadaScheme(space=AttributeSpace()))
        expected = [sequential.query(low, high) for low, high in QUERIES]
        for got, want in zip(report.measurements, expected):
            assert got.delay_hops == want.delay_hops
            assert got.messages == want.messages
            assert got.destination_peers == want.destination_peers
            assert sorted(got.matches) == sorted(want.matches)

    def test_closed_loop_when_no_arrivals(self):
        scheme = build(ArmadaScheme(space=AttributeSpace()))
        report = scheme.run_workload(QUERIES)
        assert report.queries == len(QUERIES)
        # closed loop with one outstanding query: makespan is the sum of latencies
        assert report.makespan == pytest.approx(sum(report.latencies))

    def test_requires_build(self):
        with pytest.raises(RuntimeError):
            ArmadaScheme().run_workload(QUERIES)
