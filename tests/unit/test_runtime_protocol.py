"""Unit tests for the runtime wire protocol (framing + message mapping)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.runtime.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    message_to_wire,
    read_frame,
    wire_to_message,
)
from repro.sim.network import Message
from repro.wire import decode_value, encode_value


class TestFraming:
    def test_round_trip(self):
        payload = {"type": "msg", "kind": "pira", "meta": {"level": 2}}
        frame = encode_frame(payload)
        assert frame[:4] == (len(frame) - 4).to_bytes(4, "big")
        assert decode_frame(frame[4:]) == payload

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame(json.dumps([1, 2, 3]).encode())

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_read_frame_across_stream(self):
        async def scenario():
            reader = asyncio.StreamReader()
            first = {"type": "msg", "kind": "pira"}
            second = {"type": "reply", "rid": 7, "ok": True}
            reader.feed_data(encode_frame(first) + encode_frame(second))
            reader.feed_eof()
            assert await read_frame(reader) == first
            assert await read_frame(reader) == second
            assert await read_frame(reader) is None  # clean EOF

        asyncio.run(scenario())

    def test_read_frame_truncated_returns_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"a": 1})[:-2])
            reader.feed_eof()
            assert await read_frame(reader) is None

        asyncio.run(scenario())

    def test_read_frame_refuses_giant_length(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                await read_frame(reader)

        asyncio.run(scenario())


class TestMessageMapping:
    def make_message(self):
        return Message(
            sender="010",
            receiver="102",
            kind="pira",
            hop=3,
            query_id=42,
            metadata={
                "level": 2,
                "branch": 1,
                "send": 17,
                "handler": lambda *a: None,  # local-only, must not cross
                "on_drop": lambda *a: None,
            },
        )

    def test_round_trip_preserves_wire_fields(self):
        message = self.make_message()
        wire = json.loads(json.dumps(message_to_wire(message)))
        rebuilt = wire_to_message(wire)
        assert rebuilt.sender == message.sender
        assert rebuilt.receiver == message.receiver
        assert rebuilt.kind == message.kind
        assert rebuilt.hop == message.hop
        assert rebuilt.query_id == message.query_id
        assert rebuilt.metadata["level"] == 2
        assert rebuilt.metadata["branch"] == 1
        assert rebuilt.metadata["send"] == 17

    def test_local_callables_do_not_cross(self):
        wire = message_to_wire(self.make_message())
        assert "handler" not in wire["meta"]
        assert "on_drop" not in wire["meta"]
        json.dumps(wire)  # the whole frame must be JSON-compatible

    def test_detour_latency_crosses(self):
        message = self.make_message()
        message.metadata["latency"] = 4.0
        assert wire_to_message(message_to_wire(message)).metadata["latency"] == 4.0


class TestValueCodec:
    def test_nested_tuples_survive_json(self):
        value = {"key": (1.5, ("a", 2), [3, (4,)])}
        round_tripped = decode_value(json.loads(json.dumps(encode_value(value))))
        assert round_tripped == value
        assert isinstance(round_tripped["key"], tuple)

    def test_reserved_key_rejected(self):
        with pytest.raises(ValueError):
            encode_value({"__tuple__": 1})


class TestV1Deprecation:
    def test_warns_once_per_context(self):
        import warnings

        from repro.runtime import protocol

        saved = set(protocol._V1_WARNED)
        protocol._V1_WARNED.clear()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert protocol.warn_v1_once("unit test") is True
                assert protocol.warn_v1_once("unit test") is False
                assert protocol.warn_v1_once("other context") is True
            deprecations = [w for w in caught if w.category is DeprecationWarning]
            assert len(deprecations) == 2
            assert "protocol v1" in str(deprecations[0].message)
            assert "LiveSession" in str(deprecations[0].message)
        finally:
            protocol._V1_WARNED.clear()
            protocol._V1_WARNED.update(saved)
