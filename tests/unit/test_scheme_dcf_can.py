"""Unit tests for the DCF-CAN baseline."""

from __future__ import annotations

import pytest

from repro.rangequery.base import AttributeSpace
from repro.rangequery.dcf_can import DcfCanScheme
from repro.sim.rng import DeterministicRNG
from repro.workloads.values import uniform_values


@pytest.fixture(scope="module")
def dcf() -> DcfCanScheme:
    scheme = DcfCanScheme(space=AttributeSpace(0.0, 1000.0))
    scheme.build(300, seed=41)
    values = uniform_values(DeterministicRNG(41).substream("values"), 1200, 0.0, 1000.0)
    scheme.load(values)
    scheme.loaded_values = values  # type: ignore[attr-defined]
    return scheme


class TestMapping:
    def test_value_to_point_is_deterministic_and_in_unit_square(self, dcf):
        for value in (0.0, 123.0, 999.9):
            point = dcf._value_to_point(value)
            assert dcf._value_to_point(value) == point
            assert all(0.0 <= coordinate <= 1.0 for coordinate in point)

    def test_zone_ranges_partition_the_curve(self, dcf):
        total = 0
        for zone in dcf.can.zones():
            for start, end in dcf._zone_curve_ranges(zone):
                assert 0 <= start <= end < dcf._curve_length
                total += end - start + 1
        assert total == dcf._curve_length

    def test_value_owner_consistency(self, dcf):
        # The zone found geometrically must own the value's curve index.
        rng = DeterministicRNG(42)
        for _ in range(40):
            value = rng.uniform(0.0, 1000.0)
            zone = dcf._zone_for_value(value)
            index = dcf._value_to_index(value)
            assert dcf._ranges_intersect(dcf._zone_curve_ranges(zone), index, index)


class TestQueries:
    def test_results_are_exact(self, dcf):
        rng = DeterministicRNG(43)
        for _ in range(10):
            low = rng.uniform(0.0, 900.0)
            high = low + rng.uniform(1.0, 80.0)
            measurement = dcf.query(low, high)
            expected = sorted(v for v in dcf.loaded_values if low <= v <= high)
            assert sorted(measurement.matches) == expected

    def test_destinations_match_oracle(self, dcf):
        measurement = dcf.query(100.0, 180.0)
        assert measurement.destination_peers == len(dcf.ground_truth_destinations(100.0, 180.0))

    def test_delay_grows_with_range_size(self, dcf):
        rng = DeterministicRNG(44)
        small = [dcf.query(low, low + 5.0).delay_hops for low in (rng.uniform(0, 900) for _ in range(12))]
        large = [dcf.query(low, low + 400.0).delay_hops for low in (rng.uniform(0, 500) for _ in range(12))]
        assert sum(large) / len(large) > sum(small) / len(small)

    def test_messages_at_least_destinations(self, dcf):
        measurement = dcf.query(200.0, 300.0)
        assert measurement.messages >= measurement.destination_peers - 1

    def test_invalid_range_raises(self, dcf):
        with pytest.raises(ValueError):
            dcf.query(10.0, 5.0)

    def test_query_before_build_raises(self):
        with pytest.raises(RuntimeError):
            DcfCanScheme().query(0.0, 1.0)

    def test_not_delay_bounded_flag(self, dcf):
        assert dcf.delay_bounded is False
        assert dcf.describe()["multi_attribute"] is False
