"""Unit tests for the PHT baseline (over Chord and over FISSIONE)."""

from __future__ import annotations

import math

import pytest

from repro.rangequery.base import AttributeSpace
from repro.rangequery.pht import PhtScheme, _common_prefix, _lineage_probe_labels, _prefix_intersects_keys
from repro.sim.rng import DeterministicRNG
from repro.workloads.values import uniform_values


@pytest.fixture(scope="module", params=["chord", "fissione"])
def pht(request) -> PhtScheme:
    scheme = PhtScheme(space=AttributeSpace(0.0, 1000.0), substrate=request.param)
    scheme.build(200, seed=51)
    values = uniform_values(DeterministicRNG(51).substream("values"), 800, 0.0, 1000.0)
    scheme.load(values)
    scheme.loaded_values = values  # type: ignore[attr-defined]
    return scheme


class TestHelpers:
    def test_common_prefix(self):
        assert _common_prefix("00110", "00101") == "001"
        assert _common_prefix("1", "0") == ""

    def test_prefix_intersects_keys(self):
        assert _prefix_intersects_keys("01", "0100", "0111")
        assert _prefix_intersects_keys("01", "0000", "1111")
        assert not _prefix_intersects_keys("11", "0000", "0111")

    def test_lineage_probe_labels_are_prefixes(self):
        labels = _lineage_probe_labels("010101", "0101")
        assert all("010101".startswith(label) for label in labels)


class TestTrieMaintenance:
    def test_leaves_split_at_capacity(self):
        scheme = PhtScheme(space=AttributeSpace(0.0, 10.0), substrate="chord", leaf_capacity=2)
        scheme.build(20, seed=52)
        scheme.load([1.0, 2.0, 3.0, 4.0, 5.0])
        leaves = [node for node in scheme._trie.values() if node.is_leaf]
        assert all(len(leaf.values) <= 2 for leaf in leaves)
        assert len(scheme._trie) > 1

    def test_all_values_stored_exactly_once(self):
        scheme = PhtScheme(space=AttributeSpace(0.0, 10.0), substrate="chord", leaf_capacity=4)
        scheme.build(20, seed=53)
        values = [float(v) / 10 for v in range(95)]
        scheme.load(values)
        stored = [value for node in scheme._trie.values() if node.is_leaf for value in node.values]
        assert sorted(stored) == sorted(values)


class TestQueries:
    def test_results_are_exact(self, pht):
        rng = DeterministicRNG(54)
        for _ in range(8):
            low = rng.uniform(0.0, 900.0)
            high = low + rng.uniform(1.0, 100.0)
            measurement = pht.query(low, high)
            expected = sorted(v for v in pht.loaded_values if low <= v <= high)
            assert sorted(measurement.matches) == expected

    def test_delay_is_multiple_of_log_n(self, pht):
        # PHT pays one DHT routing per trie step: delay clearly above logN.
        rng = DeterministicRNG(55)
        delays = []
        for _ in range(10):
            low = rng.uniform(0.0, 900.0)
            delays.append(pht.query(low, low + 50.0).delay_hops)
        assert sum(delays) / len(delays) > math.log2(pht.size)

    def test_query_before_build_raises(self):
        with pytest.raises(RuntimeError):
            PhtScheme().query(0.0, 1.0)

    def test_invalid_substrate_rejected(self):
        with pytest.raises(ValueError):
            PhtScheme(substrate="pastry")
