"""Unit tests for the Squid, SCRAP and native Skip Graph baselines."""

from __future__ import annotations

import math

import pytest

from repro.rangequery.base import AttributeSpace
from repro.rangequery.scrap import ScrapScheme
from repro.rangequery.skipgraph_scheme import SkipGraphScheme
from repro.rangequery.squid import SquidScheme
from repro.sim.rng import DeterministicRNG
from repro.workloads.values import uniform_values

SPACE = AttributeSpace(0.0, 1000.0)
VALUES = uniform_values(DeterministicRNG(61).substream("values"), 900, 0.0, 1000.0)


def build(scheme):
    scheme.build(250, seed=61)
    scheme.load(VALUES)
    return scheme


@pytest.fixture(scope="module")
def squid():
    return build(SquidScheme(space=SPACE))


@pytest.fixture(scope="module")
def scrap():
    return build(ScrapScheme(space=SPACE))


@pytest.fixture(scope="module")
def skip_scheme():
    return build(SkipGraphScheme(space=SPACE))


class TestExactness:
    @pytest.mark.parametrize("fixture_name", ["squid", "scrap", "skip_scheme"])
    def test_single_attribute_queries_are_exact(self, fixture_name, request):
        scheme = request.getfixturevalue(fixture_name)
        rng = DeterministicRNG(62)
        for _ in range(8):
            low = rng.uniform(0.0, 900.0)
            high = low + rng.uniform(1.0, 90.0)
            measurement = scheme.query(low, high)
            expected = sorted(v for v in VALUES if low <= v <= high)
            assert sorted(measurement.matches) == expected


class TestDelayShapes:
    def test_skipgraph_delay_grows_with_range(self, skip_scheme):
        rng = DeterministicRNG(63)
        small = [skip_scheme.query(low, low + 5.0).delay_hops for low in (rng.uniform(0, 900) for _ in range(10))]
        large = [skip_scheme.query(low, low + 400.0).delay_hops for low in (rng.uniform(0, 500) for _ in range(10))]
        assert sum(large) > sum(small)

    def test_scrap_delay_is_log_n_plus_walk(self, scrap):
        measurement = scrap.query(100.0, 300.0)
        assert measurement.delay_hops >= measurement.destination_peers - 1
        assert measurement.delay_hops <= 6 * math.log2(scrap.size) + measurement.destination_peers

    def test_squid_delay_exceeds_log_n(self, squid):
        rng = DeterministicRNG(64)
        delays = [squid.query(low, low + 50.0).delay_hops for low in (rng.uniform(0, 900) for _ in range(8))]
        assert sum(delays) / len(delays) > math.log2(squid.size)

    def test_none_of_the_baselines_claim_delay_bounded(self, squid, scrap, skip_scheme):
        assert not squid.delay_bounded
        assert not scrap.delay_bounded
        assert not skip_scheme.delay_bounded


class TestMultiAttribute:
    def test_squid_multi_attribute_queries(self):
        scheme = SquidScheme(space=AttributeSpace(0.0, 100.0), dimensions=2, key_bits_per_dim=10)
        scheme.build(150, seed=65)
        rng = DeterministicRNG(65)
        records = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(500)]
        scheme.load_multi(records)
        ranges = [(20.0, 50.0), (10.0, 60.0)]
        measurement = scheme.query_multi(ranges)
        expected = sorted(
            record[0]
            for record in records
            if all(low <= value <= high for value, (low, high) in zip(record, ranges))
        )
        assert sorted(measurement.matches) == expected

    def test_scrap_multi_attribute_queries(self):
        scheme = ScrapScheme(space=AttributeSpace(0.0, 100.0), dimensions=2, key_bits_per_dim=10)
        scheme.build(150, seed=66)
        rng = DeterministicRNG(66)
        records = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(500)]
        scheme.load_multi(records)
        ranges = [(20.0, 50.0), (10.0, 60.0)]
        measurement = scheme.query_multi(ranges)
        expected = sorted(
            record[0]
            for record in records
            if all(low <= value <= high for value, (low, high) in zip(record, ranges))
        )
        assert sorted(measurement.matches) == expected

    def test_dimension_mismatch_raises(self):
        scheme = SquidScheme(space=SPACE, dimensions=2)
        scheme.build(50, seed=67)
        with pytest.raises(ValueError):
            scheme.query_multi([(0.0, 1.0)])

    def test_skipgraph_scheme_has_no_multi_support(self, skip_scheme):
        with pytest.raises(NotImplementedError):
            skip_scheme.query_multi([(0.0, 1.0)])


class TestValidation:
    def test_query_before_build_raises(self):
        with pytest.raises(RuntimeError):
            SquidScheme().query(0.0, 1.0)
        with pytest.raises(RuntimeError):
            ScrapScheme().query(0.0, 1.0)
        with pytest.raises(RuntimeError):
            SkipGraphScheme().query(0.0, 1.0)
