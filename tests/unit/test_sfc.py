"""Unit tests for the space-filling curve helpers."""

from __future__ import annotations

import pytest

from repro.rangequery.sfc import (
    cells_to_value,
    hilbert_d2xy,
    hilbert_xy2d,
    merge_ranges,
    morton_decode,
    morton_encode,
    query_box_to_curve_ranges,
    value_to_cell,
)


class TestMorton:
    def test_encode_decode_roundtrip_2d(self):
        order = 4
        for x in range(16):
            for y in range(16):
                index = morton_encode([x, y], order)
                assert morton_decode(index, 2, order) == (x, y)

    def test_encode_decode_roundtrip_3d(self):
        order = 3
        for x in range(0, 8, 2):
            for y in range(1, 8, 3):
                for z in range(8):
                    index = morton_encode([x, y, z], order)
                    assert morton_decode(index, 3, order) == (x, y, z)

    def test_encode_is_bijective_over_grid(self):
        order = 3
        indices = {morton_encode([x, y], order) for x in range(8) for y in range(8)}
        assert indices == set(range(64))

    def test_first_coordinate_is_most_significant(self):
        assert morton_encode([1, 0], 1) == 2
        assert morton_encode([0, 1], 1) == 1

    def test_out_of_range_coordinate_raises(self):
        with pytest.raises(ValueError):
            morton_encode([4, 0], 2)
        with pytest.raises(ValueError):
            morton_decode(100, 2, 2)
        with pytest.raises(ValueError):
            morton_encode([], 2)


class TestHilbert:
    def test_xy2d_d2xy_roundtrip(self):
        order = 4
        for distance in range(1 << (2 * order)):
            x, y = hilbert_d2xy(order, distance)
            assert hilbert_xy2d(order, x, y) == distance

    def test_curve_is_continuous(self):
        # Consecutive curve positions are adjacent cells (Manhattan distance 1).
        order = 5
        previous = hilbert_d2xy(order, 0)
        for distance in range(1, 1 << (2 * order)):
            current = hilbert_d2xy(order, distance)
            manhattan = abs(current[0] - previous[0]) + abs(current[1] - previous[1])
            assert manhattan == 1
            previous = current

    def test_covers_every_cell_once(self):
        order = 3
        cells = {hilbert_d2xy(order, distance) for distance in range(64)}
        assert len(cells) == 64

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            hilbert_xy2d(2, 4, 0)
        with pytest.raises(ValueError):
            hilbert_d2xy(2, 16)


class TestValueCells:
    def test_value_to_cell_bounds(self):
        assert value_to_cell(0.0, 4) == 0
        assert value_to_cell(0.999, 4) == 15
        assert value_to_cell(1.5, 4) == 15  # clamped

    def test_cells_to_value_inverse_edge(self):
        assert cells_to_value(0, 4) == 0.0
        assert cells_to_value(8, 4) == 0.5


class TestMergeRanges:
    def test_merges_adjacent_and_overlapping(self):
        assert merge_ranges([(0, 3), (4, 6), (10, 12), (5, 8)]) == [(0, 8), (10, 12)]

    def test_empty(self):
        assert merge_ranges([]) == []

    def test_single(self):
        assert merge_ranges([(3, 4)]) == [(3, 4)]


class TestQueryBoxDecomposition:
    def test_morton_ranges_cover_exactly_the_box(self):
        order = 4
        lows, highs = [0.25, 0.5], [0.49, 0.74]
        ranges = query_box_to_curve_ranges(lows, highs, order, curve="morton", max_ranges=256)
        cell_low = [value_to_cell(low, order) for low in lows]
        cell_high = [value_to_cell(high, order) for high in highs]
        expected = {
            morton_encode([x, y], order)
            for x in range(cell_low[0], cell_high[0] + 1)
            for y in range(cell_low[1], cell_high[1] + 1)
        }
        covered = set()
        for start, end in ranges:
            covered.update(range(start, end + 1))
        assert expected <= covered

    def test_range_budget_produces_superset(self):
        order = 6
        tight = query_box_to_curve_ranges([0.1, 0.1], [0.6, 0.2], order, max_ranges=512)
        coarse = query_box_to_curve_ranges([0.1, 0.1], [0.6, 0.2], order, max_ranges=4)
        assert len(coarse) <= len(tight)
        tight_cells = set()
        for start, end in tight:
            tight_cells.update(range(start, end + 1))
        coarse_cells = set()
        for start, end in coarse:
            coarse_cells.update(range(start, end + 1))
        assert tight_cells <= coarse_cells

    def test_hilbert_decomposition_small_box(self):
        ranges = query_box_to_curve_ranges([0.0, 0.0], [0.12, 0.12], 3, curve="hilbert")
        assert ranges
        covered = set()
        for start, end in ranges:
            covered.update(range(start, end + 1))
        cell_high = value_to_cell(0.12, 3)
        expected = {
            hilbert_xy2d(3, x, y) for x in range(cell_high + 1) for y in range(cell_high + 1)
        }
        assert covered == expected

    def test_unknown_curve_rejected(self):
        with pytest.raises(ValueError):
            query_box_to_curve_ranges([0.0], [0.1], 4, curve="peano")

    def test_hilbert_requires_two_dimensions(self):
        with pytest.raises(ValueError):
            query_box_to_curve_ranges([0.0], [0.1], 4, curve="hilbert")
