"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda: fired.append("c"))
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in ("first", "second", "third"):
            sim.schedule_at(1.0, lambda label=label: fired.append(label))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_priority_breaks_ties_before_insertion_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("low"), priority=5)
        sim.schedule_at(1.0, lambda: fired.append("high"), priority=0)
        sim.run()
        assert fired == ["high", "low"]

    def test_schedule_after_is_relative_to_now(self):
        sim = Simulator()
        times = []
        sim.schedule_at(5.0, lambda: sim.schedule_after(2.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [7.0]

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule_at(4.5, lambda: None)
        sim.run()
        assert sim.now == 4.5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("keep"))
        handle = sim.schedule_at(2.0, lambda: fired.append("drop"))
        sim.schedule_at(3.0, lambda: fired.append("keep2"))
        handle.cancel()
        sim.run()
        assert fired == ["keep", "keep2"]


class TestPendingCountAndCompaction:
    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        handles = [sim.schedule_at(float(i + 1), lambda: None) for i in range(6)]
        assert sim.pending_events == 6
        handles[0].cancel()
        handles[3].cancel()
        assert sim.pending_events == 4

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        handle = sim.schedule_at(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 1

    def test_cancel_after_fire_does_not_skew_count(self):
        sim = Simulator()
        handle = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run(until=1.5)
        handle.cancel()
        assert sim.pending_events == 1

    def test_compaction_triggers_above_half_cancelled(self):
        sim = Simulator()
        keep = [sim.schedule_at(100.0, lambda: None) for _ in range(10)]
        drop = [sim.schedule_at(200.0, lambda: None) for _ in range(11)]
        for handle in drop:
            handle.cancel()
        # >50% of the 21 entries are tombstones -> the heap was rebuilt
        assert sim.compactions >= 1
        assert sim.heap_size == 10
        assert sim.pending_events == 10
        assert all(not handle.cancelled for handle in keep)

    def test_small_heaps_are_not_compacted(self):
        sim = Simulator()
        handles = [sim.schedule_at(float(i + 1), lambda: None) for i in range(4)]
        for handle in handles[:3]:
            handle.cancel()
        assert sim.compactions == 0
        assert sim.pending_events == 1

    def test_compacted_simulation_still_fires_survivors_in_order(self):
        sim = Simulator()
        fired = []
        for index in range(20):
            sim.schedule_at(float(index + 1), lambda index=index: fired.append(index))
        cancelled = [sim.schedule_at(50.0, lambda: fired.append("no")) for _ in range(30)]
        for handle in cancelled:
            handle.cancel()
        assert sim.compactions >= 1
        sim.run()
        assert fired == list(range(20))

    def test_cancel_of_pre_reset_handle_does_not_skew_new_epoch(self):
        sim = Simulator()
        stale = sim.schedule_at(1.0, lambda: None)
        sim.reset()
        sim.schedule_at(2.0, lambda: None)
        stale.cancel()
        assert sim.pending_events == 1

    def test_pending_count_survives_run_and_reset(self):
        sim = Simulator()
        handle = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        handle.cancel()
        sim.run()
        assert sim.pending_events == 0
        sim.schedule_at(3.0, lambda: None).cancel()
        sim.reset()
        assert sim.pending_events == 0


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.pending_events == 1

    def test_run_until_advances_clock_to_until(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_max_events_limits_execution(self):
        sim = Simulator()
        fired = []
        for index in range(5):
            sim.schedule_at(float(index + 1), lambda index=index: fired.append(index))
        executed = sim.run(max_events=3)
        assert executed == 3
        assert fired == [0, 1, 2]

    def test_run_returns_executed_count(self):
        sim = Simulator()
        for index in range(4):
            sim.schedule_at(float(index), lambda: None)
        assert sim.run() == 4
        assert sim.processed_events == 4

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def chain(depth: int) -> None:
            fired.append(depth)
            if depth < 3:
                sim.schedule_after(1.0, lambda: chain(depth + 1))

        sim.schedule_at(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]

    def test_reset_clears_state(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.processed_events == 0

    def test_reentrant_run_raises(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule_at(1.0, reenter)
        sim.run()
        assert len(errors) == 1
