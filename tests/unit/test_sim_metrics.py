"""Unit tests for counters and summary statistics."""

from __future__ import annotations

import math

import pytest

from repro.sim.metrics import (
    Counter,
    MetricsRegistry,
    SummaryStats,
    log2_or_zero,
    mean,
    safe_ratio,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_increment_default_is_one(self):
        counter = Counter("x")
        counter.increment()
        assert counter.value == 1

    def test_increment_by_amount(self):
        counter = Counter("x")
        counter.increment(5)
        counter.increment(2)
        assert counter.value == 7

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0


class TestSummaryStats:
    def test_empty_summary_is_all_zero(self):
        stats = SummaryStats("empty")
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.minimum == 0.0
        assert stats.maximum == 0.0
        assert stats.stddev == 0.0

    def test_mean_min_max(self):
        stats = SummaryStats()
        stats.extend([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.total == pytest.approx(10.0)

    def test_stddev_population(self):
        stats = SummaryStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.stddev == pytest.approx(2.0)

    def test_percentile_nearest_rank(self):
        stats = SummaryStats()
        stats.extend(range(1, 101))
        assert stats.percentile(0.5) == 50
        assert stats.percentile(0.99) == 99
        assert stats.percentile(1.0) == 100
        assert stats.percentile(0.0) == 1

    def test_percentile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            SummaryStats().percentile(1.5)

    def test_merge_combines_samples(self):
        first = SummaryStats()
        first.extend([1.0, 2.0])
        second = SummaryStats()
        second.extend([3.0, 4.0])
        first.merge(second)
        assert first.count == 4
        assert first.mean == pytest.approx(2.5)

    def test_as_dict_keys(self):
        stats = SummaryStats("delays")
        stats.add(3.0)
        payload = stats.as_dict()
        assert set(payload) == {"count", "mean", "min", "max", "stddev"}


class TestMetricsRegistry:
    def test_counter_is_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("messages").increment()
        assert registry.counter_value("messages") == 1

    def test_counter_value_default_for_missing(self):
        assert MetricsRegistry().counter_value("missing", default=7) == 7

    def test_summary_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.summary("delay").add(4.0)
        assert registry.summary("delay").mean == 4.0

    def test_snapshot_contains_counters_and_summaries(self):
        registry = MetricsRegistry()
        registry.counter("sends").increment(2)
        registry.summary("delay").add(5.0)
        snapshot = registry.snapshot()
        assert snapshot["counter.sends"] == 2.0
        assert snapshot["summary.delay.mean"] == 5.0

    def test_reset_clears_counters_and_summaries(self):
        registry = MetricsRegistry()
        registry.counter("sends").increment(2)
        registry.summary("delay").add(5.0)
        registry.reset()
        assert registry.counter_value("sends") == 0
        assert registry.summaries == {}


class TestHelpers:
    def test_mean_of_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_mean_of_values(self):
        assert mean([1, 2, 3]) == pytest.approx(2.0)

    def test_safe_ratio_guards_zero(self):
        assert safe_ratio(4, 0, default=-1.0) == -1.0
        assert safe_ratio(4, 2) == 2.0

    def test_log2_or_zero(self):
        assert log2_or_zero(8) == pytest.approx(3.0)
        assert log2_or_zero(0) == 0.0
        assert log2_or_zero(-5) == 0.0
        assert log2_or_zero(1024) == pytest.approx(math.log2(1024))
