"""Unit tests for the overlay network model."""

from __future__ import annotations

import pytest

from repro.sim.network import (
    HopLatencyModel,
    Message,
    NetworkError,
    OverlayNetwork,
    UniformLatencyModel,
)
from repro.sim.rng import DeterministicRNG
from repro.sim.trace import TraceRecorder


class EchoNode:
    """Test node: records received messages, optionally replies once."""

    def __init__(self, node_id, reply_to=None):
        self.node_id = node_id
        self.received = []
        self.reply_to = reply_to

    def handle_message(self, network, message):
        self.received.append(message)
        if self.reply_to is not None:
            target, self.reply_to = self.reply_to, None
            network.send(
                Message(sender=self.node_id, receiver=target, kind="reply", hop=message.hop + 1)
            )


class TestRegistration:
    def test_register_and_lookup(self):
        overlay = OverlayNetwork()
        node = EchoNode("a")
        overlay.register(node)
        assert overlay.node("a") is node
        assert overlay.has_node("a")
        assert overlay.node_count == 1

    def test_unknown_node_raises(self):
        with pytest.raises(NetworkError):
            OverlayNetwork().node("ghost")

    def test_unregister_removes_node(self):
        overlay = OverlayNetwork()
        overlay.register(EchoNode("a"))
        overlay.unregister("a")
        assert not overlay.has_node("a")

    def test_send_to_unknown_node_raises(self):
        overlay = OverlayNetwork()
        overlay.register(EchoNode("a"))
        with pytest.raises(NetworkError):
            overlay.send(Message(sender="a", receiver="ghost", kind="q"))


class TestDelivery:
    def test_message_delivered_after_one_hop_latency(self):
        overlay = OverlayNetwork()
        a, b = EchoNode("a"), EchoNode("b")
        overlay.register(a)
        overlay.register(b)
        overlay.send(Message(sender="a", receiver="b", kind="query", payload="hello"))
        overlay.run()
        assert len(b.received) == 1
        assert b.received[0].payload == "hello"
        assert overlay.simulator.now == pytest.approx(1.0)

    def test_messages_counted_total_and_per_kind(self):
        overlay = OverlayNetwork()
        overlay.register(EchoNode("a"))
        overlay.register(EchoNode("b"))
        overlay.send(Message(sender="a", receiver="b", kind="query"))
        overlay.send(Message(sender="a", receiver="b", kind="reply"))
        overlay.send(Message(sender="a", receiver="b", kind="query"))
        assert overlay.metrics.counter_value("messages.total") == 3
        assert overlay.metrics.counter_value("messages.query") == 2
        assert overlay.metrics.counter_value("messages.reply") == 1

    def test_reply_chain_advances_time_per_hop(self):
        overlay = OverlayNetwork()
        a = EchoNode("a")
        b = EchoNode("b", reply_to="a")
        overlay.register(a)
        overlay.register(b)
        overlay.send(Message(sender="a", receiver="b", kind="query", hop=1))
        overlay.run()
        assert len(a.received) == 1
        assert a.received[0].hop == 2
        assert overlay.simulator.now == pytest.approx(2.0)

    def test_message_to_departed_node_is_undeliverable(self):
        overlay = OverlayNetwork()
        overlay.register(EchoNode("a"))
        overlay.register(EchoNode("b"))
        overlay.send(Message(sender="a", receiver="b", kind="query"))
        overlay.unregister("b")
        overlay.run()
        assert overlay.metrics.counter_value("messages.undeliverable") == 1

    def test_drop_filter_drops_matching_messages(self):
        overlay = OverlayNetwork()
        a, b = EchoNode("a"), EchoNode("b")
        overlay.register(a)
        overlay.register(b)
        overlay.set_drop_filter(lambda message: message.kind == "query")
        overlay.send(Message(sender="a", receiver="b", kind="query"))
        overlay.send(Message(sender="a", receiver="b", kind="data"))
        overlay.run()
        assert len(b.received) == 1
        assert b.received[0].kind == "data"
        assert overlay.metrics.counter_value("messages.dropped") == 1

    def test_trace_records_send_and_deliver(self):
        trace = TraceRecorder()
        overlay = OverlayNetwork(trace=trace)
        overlay.register(EchoNode("a"))
        overlay.register(EchoNode("b"))
        overlay.send(Message(sender="a", receiver="b", kind="query"))
        overlay.run()
        assert len(trace.filter(kind="send")) == 1
        assert len(trace.filter(kind="deliver")) == 1


class TestLatencyModels:
    def test_hop_latency_is_always_one(self):
        model = HopLatencyModel()
        assert model.latency(Message(sender="a", receiver="b", kind="q")) == 1.0

    def test_uniform_latency_within_bounds(self):
        model = UniformLatencyModel(5.0, 10.0, DeterministicRNG(1))
        for _ in range(50):
            latency = model.latency(Message(sender="a", receiver="b", kind="q"))
            assert 5.0 <= latency <= 10.0

    def test_uniform_latency_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformLatencyModel(10.0, 5.0, DeterministicRNG(1))
