"""Unit tests for the deterministic RNG helpers."""

from __future__ import annotations

import pytest

from repro.sim.rng import DeterministicRNG, derive_seed


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(42, "queries") == derive_seed(42, "queries")

    def test_different_labels_different_seed(self):
        assert derive_seed(42, "queries") != derive_seed(42, "topology")

    def test_different_base_different_seed(self):
        assert derive_seed(1, "queries") != derive_seed(2, "queries")

    def test_multiple_components(self):
        assert derive_seed(1, "a", 2, 3.5) == derive_seed(1, "a", 2, 3.5)
        assert derive_seed(1, "a", 2, 3.5) != derive_seed(1, "a", 2, 3.6)


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        first = [DeterministicRNG(5).random() for _ in range(10)]
        second = [DeterministicRNG(5).random() for _ in range(10)]
        assert first == second

    def test_substreams_are_independent_and_reproducible(self):
        root = DeterministicRNG(5)
        a1 = root.substream("a").random()
        b1 = root.substream("b").random()
        a2 = DeterministicRNG(5).substream("a").random()
        assert a1 == a2
        assert a1 != b1

    def test_uniform_respects_bounds(self):
        rng = DeterministicRNG(1)
        for _ in range(200):
            value = rng.uniform(3.0, 7.0)
            assert 3.0 <= value <= 7.0

    def test_randint_inclusive_bounds(self):
        rng = DeterministicRNG(1)
        values = {rng.randint(0, 3) for _ in range(300)}
        assert values == {0, 1, 2, 3}

    def test_choice_returns_member(self):
        rng = DeterministicRNG(1)
        items = ["a", "b", "c"]
        for _ in range(20):
            assert rng.choice(items) in items

    def test_sample_has_no_duplicates(self):
        rng = DeterministicRNG(1)
        sample = rng.sample(list(range(100)), 10)
        assert len(sample) == len(set(sample)) == 10

    def test_shuffle_is_permutation(self):
        rng = DeterministicRNG(1)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_permutation_leaves_input_untouched(self):
        rng = DeterministicRNG(1)
        items = [1, 2, 3]
        result = rng.permutation(items)
        assert sorted(result) == items
        assert items == [1, 2, 3]

    def test_zipf_rank_within_range_and_skewed(self):
        rng = DeterministicRNG(1)
        ranks = [rng.zipf(1.2, 50) for _ in range(2000)]
        assert all(1 <= rank <= 50 for rank in ranks)
        ones = sum(1 for rank in ranks if rank == 1)
        fifties = sum(1 for rank in ranks if rank == 50)
        assert ones > fifties

    def test_zipf_parameter_validation(self):
        rng = DeterministicRNG(1)
        with pytest.raises(ValueError):
            rng.zipf(0.0, 10)
        with pytest.raises(ValueError):
            rng.zipf(1.0, 0)

    def test_exponential_positive_and_mean_validated(self):
        rng = DeterministicRNG(1)
        assert rng.exponential(2.0) > 0.0
        with pytest.raises(ValueError):
            rng.exponential(0.0)

    def test_seed_property(self):
        assert DeterministicRNG(99).seed == 99
