"""Unit tests for the trace recorder."""

from __future__ import annotations

from repro.sim.trace import TraceEvent, TraceRecorder


class TestTraceRecorder:
    def test_record_and_iterate(self):
        trace = TraceRecorder()
        trace.record(1.0, "send", sender="a", receiver="b")
        trace.record(2.0, "deliver", sender="a", receiver="b")
        assert len(trace) == 2
        kinds = [event.kind for event in trace]
        assert kinds == ["send", "deliver"]

    def test_disabled_recorder_records_nothing(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "send")
        assert len(trace) == 0

    def test_max_events_caps_recording(self):
        trace = TraceRecorder(max_events=2)
        for index in range(5):
            trace.record(float(index), "send", index=index)
        assert len(trace) == 2

    def test_filter_by_kind(self):
        trace = TraceRecorder()
        trace.record(1.0, "send", hop=1)
        trace.record(2.0, "deliver", hop=1)
        trace.record(3.0, "send", hop=2)
        assert len(trace.filter(kind="send")) == 2

    def test_filter_by_attribute(self):
        trace = TraceRecorder()
        trace.record(1.0, "send", receiver="a")
        trace.record(2.0, "send", receiver="b")
        matches = trace.filter(kind="send", receiver="b")
        assert len(matches) == 1
        assert matches[0].get("receiver") == "b"

    def test_clear_empties_trace(self):
        trace = TraceRecorder()
        trace.record(1.0, "send")
        trace.clear()
        assert len(trace) == 0

    def test_format_includes_attributes_and_truncation_note(self):
        trace = TraceRecorder()
        for index in range(5):
            trace.record(float(index), "send", seq=index)
        text = trace.format(limit=2)
        assert "seq=0" in text
        assert "3 more events" in text

    def test_event_get_default(self):
        event = TraceEvent(time=1.0, kind="send", attributes={"a": 1})
        assert event.get("a") == 1
        assert event.get("missing", "default") == "default"

    def test_dropped_counter_tracks_events_beyond_cap(self):
        trace = TraceRecorder(max_events=2)
        for index in range(5):
            trace.record(float(index), "send", index=index)
        assert trace.dropped == 3
        assert trace.truncated
        assert "3 events dropped" in trace.format()

    def test_untruncated_recorder_reports_clean(self):
        trace = TraceRecorder(max_events=10)
        trace.record(1.0, "send")
        assert trace.dropped == 0
        assert not trace.truncated
        assert "dropped" not in trace.format()

    def test_clear_resets_dropped(self):
        trace = TraceRecorder(max_events=1)
        trace.record(1.0, "send")
        trace.record(2.0, "send")
        assert trace.dropped == 1
        trace.clear()
        assert trace.dropped == 0
        assert not trace.truncated
