"""Unit tests for Single_hash and the single-attribute namer."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.core.single_hash import SingleAttributeNamer, range_to_region, single_hash
from repro.kautz import strings as ks


class TestSingleHashFunction:
    def test_paper_worked_examples(self):
        # Section 4.1: value 0.1 -> 0120; range [0.1, 0.24] -> <0120, 0202>.
        assert single_hash(0.1, 0.0, 1.0, 4) == "0120"
        assert single_hash(0.24, 0.0, 1.0, 4) == "0202"

    def test_output_is_valid_kautz_string_of_requested_length(self):
        for value in (0.0, 123.4, 999.99, 1000.0):
            object_id = single_hash(value, 0.0, 1000.0, 20)
            assert len(object_id) == 20
            assert ks.is_kautz_string(object_id, base=2)

    def test_order_preserving(self):
        values = [index * 7.3 for index in range(137)]
        ids = [single_hash(value, 0.0, 1000.0, 16) for value in values]
        assert ids == sorted(ids)


class TestSingleAttributeNamer:
    def setup_method(self):
        self.namer = SingleAttributeNamer(low=0.0, high=1000.0, length=12)

    def test_name_matches_function(self):
        assert self.namer.name(250.0) == single_hash(250.0, 0.0, 1000.0, 12)

    def test_value_interval_inverse(self):
        for value in (0.0, 77.7, 500.0, 999.0):
            object_id = self.namer.name(value)
            assert self.namer.value_interval(object_id).contains(value)

    def test_region_for_range_endpoints(self):
        region = self.namer.region_for_range(100.0, 200.0)
        assert region.low == self.namer.name(100.0)
        assert region.high == self.namer.name(200.0)

    def test_region_contains_all_values_in_range(self):
        region = self.namer.region_for_range(100.0, 200.0)
        for value in (100.0, 150.0, 199.99, 200.0):
            assert self.namer.name(value) in region

    def test_region_excludes_far_values(self):
        region = self.namer.region_for_range(100.0, 200.0)
        for value in (0.0, 99.0, 300.0, 900.0):
            assert self.namer.name(value) not in region

    def test_region_clamps_out_of_interval_bounds(self):
        region = self.namer.region_for_range(-50.0, 2000.0)
        assert region.low == self.namer.name(0.0)
        assert region.high == self.namer.name(1000.0)

    def test_inverted_range_raises(self):
        with pytest.raises(QueryError):
            self.namer.region_for_range(300.0, 200.0)

    def test_range_bounds_helper(self):
        low_id, high_id = self.namer.range_bounds(10.0, 20.0)
        assert low_id <= high_id
        assert len(low_id) == len(high_id) == 12

    def test_matches_filter(self):
        assert self.namer.matches(150.0, 100.0, 200.0)
        assert not self.namer.matches(99.0, 100.0, 200.0)

    def test_prefix_interval_is_coarser_than_leaf(self):
        object_id = self.namer.name(400.0)
        leaf_interval = self.namer.value_interval(object_id)
        prefix_interval = self.namer.prefix_interval(object_id[:4])
        assert prefix_interval.low <= leaf_interval.low
        assert prefix_interval.high >= leaf_interval.high

    def test_properties(self):
        assert self.namer.low == 0.0
        assert self.namer.high == 1000.0
        assert self.namer.length == 12
        assert self.namer.base == 2


class TestIntervalPreservation:
    def test_image_of_range_is_exactly_the_region(self):
        """Definition 2: the image of [a, b] equals the Kautz region <F(a), F(b)>."""
        namer = SingleAttributeNamer(low=0.0, high=1.0, length=5)
        sample = [index / 2000 for index in range(2001)]
        for a, b in ((0.1, 0.24), (0.0, 0.05), (0.7, 1.0), (0.33, 0.34)):
            region = namer.region_for_range(a, b)
            image = {namer.name(value) for value in sample if a <= value <= b}
            # Every named value falls inside the region ...
            assert image <= set(region)
            # ... and with a dense enough sample the region is fully covered.
            assert image == set(region)

    def test_range_to_region_convenience(self):
        region = range_to_region(0.1, 0.24, 0.0, 1.0, 4)
        assert (region.low, region.high) == ("0120", "0202")
