"""Unit tests for the durable peer-storage layer (`repro.storage`).

The contract under test is the one the crash-consistency suite leans on:

* ``sync()`` is the durability barrier — after it returns, a power
  failure (:meth:`~repro.storage.base.Store.power_fail`) followed by
  :meth:`~repro.storage.base.Store.replay` restores exactly the synced
  state, bit for bit by content-addressed digest;
* unsynced writes are *allowed* to vanish at a power failure and must
  never resurrect;
* a torn final record (the crash landed mid-``write``) is truncated on
  replay, while corruption *followed by* valid records — which no crash
  can produce in an append-only log — is an integrity error.
"""

from __future__ import annotations

import os
import struct
import zlib

import pytest

from repro.binframe import encode_binary
from repro.storage import BACKENDS, open_store, store_factory, store_path
from repro.storage.base import StorageError, StoredObject
from repro.storage.memory import MemoryStore
from repro.storage.sqlite import SQLiteStore
from repro.storage.wal import WAL_HEADER, WALStore

DURABLE = ("wal", "sqlite")


def make_store(backend, tmp_path, name="peer", sync_mode="always"):
    if backend == "memory":
        return MemoryStore()
    return open_store(backend, str(tmp_path / f"{name}.{backend}"), sync_mode=sync_mode)


def fill(store):
    """A small population exercising both ops and both key shapes."""
    store.put("0101", key=1.0, value=10.0)
    store.put("0102", key=2.0, value=None)
    store.put("0101", key=1.0, value=11.0)  # second copy under the same id
    store.put("0210", key=(3.0, 4.0), value="multi")
    store.put_replica("0120", key=9.0, value=90.0)


class TestStoreContract:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_put_get_round_trip(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        fill(store)
        assert [s.value for s in store.get("0101")] == [10.0, 11.0]
        assert store.get("0102")[0].value is None
        assert store.get("0210")[0].key == (3.0, 4.0)
        assert store.object_count() == 4
        assert store.replica_count() == 1
        assert [s.value for s in store.get_replica("0120")] == [90.0]
        # replica copies never appear in the query-scanned view
        assert "0120" not in store.view
        store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_digest_is_backend_independent(self, backend, tmp_path):
        reference = MemoryStore()
        fill(reference)
        store = make_store(backend, tmp_path)
        fill(store)
        assert store.digest() == reference.digest()
        assert store.digest("01") == reference.digest("01")
        assert store.digest("01") != store.digest("02")
        assert store.digest(replicas=True) != store.digest(replicas=False)
        store.close()

    @pytest.mark.parametrize("backend", DURABLE)
    def test_synced_writes_survive_power_failure(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        fill(store)
        store.sync()
        digest = store.digest()
        replica_digest = store.digest(replicas=True)
        store.power_fail()
        assert store.object_count() == 0  # volatile views are gone
        assert store.replay() == 5
        assert store.digest() == digest
        assert store.digest(replicas=True) == replica_digest
        store.close()

    @pytest.mark.parametrize("backend", DURABLE)
    def test_unsynced_writes_may_vanish_and_never_resurrect(self, backend, tmp_path):
        store = make_store(backend, tmp_path, sync_mode="manual")
        store.put("0101", key=1.0, value=10.0)
        store.sync()
        store.put("0102", key=2.0, value=20.0)  # acked? no — never synced
        store.power_fail()
        store.replay()
        assert [s.value for s in store.get("0101")] == [10.0]
        assert store.get("0102") == []
        store.close()

    @pytest.mark.parametrize("backend", DURABLE)
    def test_take_prefix_is_durable(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        fill(store)
        moved = store.take_prefix("01")
        assert sorted({s.object_id for s in moved}) == ["0101", "0102"]
        store.sync()
        store.power_fail()
        store.replay()
        assert store.get("0101") == []
        assert [s.key for s in store.get("0210")] == [(3.0, 4.0)]
        store.close()

    @pytest.mark.parametrize("backend", DURABLE)
    def test_reopen_from_disk(self, backend, tmp_path):
        path = str(tmp_path / f"peer.{backend}")
        store = open_store(backend, path)
        fill(store)
        digest = store.digest()
        store.close()
        reopened = open_store(backend, path)
        assert reopened.replay() == 5
        assert reopened.digest() == digest
        reopened.close()


class TestWALIntegrity:
    def put_n(self, path, n):
        store = WALStore(path)
        for i in range(n):
            store.put(f"obj{i}", key=float(i), value=float(i))
        store.close()
        return store

    def test_torn_final_record_is_truncated(self, tmp_path):
        path = str(tmp_path / "peer.wal")
        self.put_n(path, 3)
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.truncate(handle.tell() - 2)  # tear the last record
        store = WALStore(path)
        assert store.replay() == 2
        # the log is clean again: appends after the truncation replay fine
        store.put("obj9", key=9.0, value=9.0)
        store.sync()
        store.power_fail()
        assert store.replay() == 3
        store.close()

    def test_mid_log_corruption_is_an_error(self, tmp_path):
        path = str(tmp_path / "peer.wal")
        self.put_n(path, 3)
        with open(path, "r+b") as handle:
            handle.seek(len(WAL_HEADER) + 12)  # inside the first record body
            handle.write(b"\xff\xff")
        store = WALStore(path)
        with pytest.raises(StorageError, match="CRC mismatch"):
            store.replay()

    def test_missing_header_is_an_error(self, tmp_path):
        path = str(tmp_path / "peer.wal")
        with open(path, "wb") as handle:
            handle.write(b"not a wal file")
        with pytest.raises(StorageError, match="header"):
            WALStore(path).replay()

    def test_crc_protects_every_record(self, tmp_path):
        path = str(tmp_path / "peer.wal")
        self.put_n(path, 1)
        body = encode_binary(["put", "x", 1.0, 1.0])
        with open(path, "ab") as handle:  # append a record with a bad CRC
            handle.write(struct.pack(">II", len(body), zlib.crc32(body) ^ 1) + body)
        store = WALStore(path)
        assert store.replay() == 1  # trailing garbage == torn tail, dropped
        store.close()


class TestSQLite:
    def test_rollback_on_power_fail(self, tmp_path):
        store = SQLiteStore(str(tmp_path / "peer.sqlite"), sync_mode="manual")
        store.put("a", key=1.0, value=1.0)
        store.sync()
        store.put("b", key=2.0, value=2.0)
        store.power_fail()
        assert store.replay() == 1
        assert store.get("b") == []
        store.close()


class TestFactory:
    def test_open_store_validates_backend(self, tmp_path):
        with pytest.raises(StorageError, match="unknown storage backend"):
            open_store("postgres", str(tmp_path / "x"))
        with pytest.raises(StorageError, match="path"):
            open_store("wal")

    def test_store_path_names_by_peer(self, tmp_path):
        assert store_path(str(tmp_path), "0121", "wal").endswith("peer-0121.wal")
        assert store_path(str(tmp_path), "0121", "sqlite").endswith("peer-0121.sqlite")

    def test_factory_creates_data_dir(self, tmp_path):
        factory = store_factory("wal", data_dir=str(tmp_path / "logs"))
        store = factory("0101")
        store.put("0101", key=1.0, value=1.0)
        store.close()
        assert os.path.exists(store_path(str(tmp_path / "logs"), "0101", "wal"))

    def test_memory_factory_needs_no_dir(self):
        assert store_factory("memory")("0101").backend_name == "memory"


class TestStoredObject:
    def test_wire_round_trip(self):
        stored = StoredObject(object_id="0101", key=(1.0, 2.0), value={"a": [1]})
        assert StoredObject.from_wire(stored.to_wire()) == stored
