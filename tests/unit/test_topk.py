"""Unit tests for the top-k extension."""

from __future__ import annotations

import pytest

from repro.core.armada import ArmadaSystem
from repro.core.errors import QueryError
from repro.core.topk import TopKExecutor


@pytest.fixture(scope="module")
def topk_system():
    system = ArmadaSystem(num_peers=64, seed=21, attribute_interval=(0.0, 1000.0))
    system.insert_many([float(v) for v in range(0, 1000, 7)])
    return system


class TestTopK:
    def test_top_k_overall(self, topk_system):
        executor = TopKExecutor(topk_system)
        result = executor.top_k(5)
        expected = sorted((float(v) for v in range(0, 1000, 7)), reverse=True)[:5]
        assert result.values == expected

    def test_top_k_within_range(self, topk_system):
        executor = TopKExecutor(topk_system)
        result = executor.top_k(3, low=200.0, high=400.0)
        expected = sorted(
            (float(v) for v in range(0, 1000, 7) if 200.0 <= v <= 400.0), reverse=True
        )[:3]
        assert result.values == expected
        assert result.low == 200.0 and result.high == 400.0

    def test_k_larger_than_population_returns_everything(self, topk_system):
        executor = TopKExecutor(topk_system)
        result = executor.top_k(10, low=990.0, high=1000.0)
        expected = sorted(
            (float(v) for v in range(0, 1000, 7) if v >= 990.0), reverse=True
        )
        assert result.values == expected

    def test_probes_are_delay_bounded(self, topk_system):
        executor = TopKExecutor(topk_system)
        result = executor.top_k(5)
        bound = 2 * topk_system.log_size() + 1
        assert all(probe.delay_hops <= bound for probe in result.probes)
        assert result.total_delay_hops == sum(probe.delay_hops for probe in result.probes)
        assert result.total_messages == sum(probe.messages for probe in result.probes)
        assert result.rounds == len(result.probes)

    def test_small_initial_fraction_uses_more_rounds_than_whole_range(self, topk_system):
        narrow = TopKExecutor(topk_system, initial_fraction=0.01).top_k(1)
        wide = TopKExecutor(topk_system, initial_fraction=1.0).top_k(1)
        assert wide.rounds == 1
        assert narrow.rounds >= 1
        assert narrow.values == wide.values

    def test_invalid_parameters(self, topk_system):
        executor = TopKExecutor(topk_system)
        with pytest.raises(QueryError):
            executor.top_k(0)
        with pytest.raises(QueryError):
            executor.top_k(3, low=500.0, high=100.0)
        with pytest.raises(QueryError):
            TopKExecutor(topk_system, initial_fraction=0.0)
