"""Exporter edge cases: empty traces, clipped traces, detour round-trips.

The happy paths live in ``test_obs_spans.py``; these are the boundary
shapes the exporters must survive — a run that traced nothing, a trace
the span cap clipped, and a fault-recovery trace (timeout hop + detour
child) surviving a full wire → Perfetto round-trip.
"""

from __future__ import annotations

import json

from repro.obs.spans import (
    Tracer,
    spans_to_chrome,
    spans_to_jsonl,
    trace_from_wire,
)


def build_detour_trace(tracer: Tracer):
    """A trace shaped like a real fault recovery: a timed-out hop whose
    retransmissions and sibling detour hang off it as children."""
    trace = tracer.begin_query("pira", 0.0, query_id=7, origin="012")
    hop = tracer.start_span(trace, "hop 012->101", 0.0, sender="012", receiver="101")
    tracer.event(trace, "retry", 1.0, parent_id=hop.span_id, attempt=1)
    tracer.end_span(hop, 2.0, status="timeout")
    detour = tracer.start_span(
        trace, "detour 012->210", 2.0, parent_id=hop.span_id, receiver="210"
    )
    tracer.end_span(detour, 3.0)
    tracer.finish_query(trace, 3.0)
    return trace


class TestEmptyTrace:
    def test_from_wire_of_nothing_is_none(self):
        assert trace_from_wire([]) is None

    def test_chrome_export_of_no_traces_is_loadable(self):
        payload = spans_to_chrome([])
        assert payload["traceEvents"] == []
        assert "otherData" not in payload
        # Perfetto only needs valid JSON with a traceEvents array.
        assert json.loads(json.dumps(payload)) == payload

    def test_jsonl_export_of_no_spans_is_empty(self):
        assert spans_to_jsonl([]) == ""


class TestClippedTrace:
    def test_dropped_count_lands_in_other_data(self):
        tracer = Tracer(max_spans_per_trace=2)
        trace = tracer.begin_query("pira", 0.0)
        tracer.start_span(trace, "kept", 0.0)
        tracer.start_span(trace, "clipped", 0.0)
        tracer.finish_query(trace, 1.0)
        assert tracer.dropped == 1
        payload = spans_to_chrome([trace], dropped=tracer.dropped)
        assert payload["otherData"] == {"dropped_spans": 1}
        # The surviving spans still export normally next to the loss marker.
        assert len(payload["traceEvents"]) == 2

    def test_zero_dropped_adds_no_other_data(self):
        trace = Tracer().begin_query("pira", 0.0)
        assert "otherData" not in spans_to_chrome([trace], dropped=0)


class TestDetourRoundTrip:
    def test_wire_round_trip_preserves_perfetto_payload(self):
        trace = build_detour_trace(Tracer())
        wire = json.loads(json.dumps(trace.to_wire()))  # across a real codec
        rebuilt = trace_from_wire(wire)
        original = spans_to_chrome([trace], dropped=0)
        round_tripped = spans_to_chrome([rebuilt], dropped=0)
        assert json.dumps(round_tripped, sort_keys=True) == json.dumps(
            original, sort_keys=True
        )

    def test_detour_keeps_parent_and_statuses(self):
        rebuilt = trace_from_wire(build_detour_trace(Tracer()).to_wire())
        by_name = {span.name: span for span in rebuilt.spans}
        hop = by_name["hop 012->101"]
        assert hop.status == "timeout"
        assert by_name["detour 012->210"].parent_id == hop.span_id
        assert by_name["retry"].parent_id == hop.span_id
        events = spans_to_chrome([rebuilt])["traceEvents"]
        phases = {event["name"]: event["ph"] for event in events}
        assert phases["retry"] == "i"
        assert phases["detour 012->210"] == "X"
