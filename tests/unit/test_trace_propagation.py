"""Trace-context propagation through the executors, faults and the wire.

The tracing plane's contract tests: hop spans mirror the forward routing
tree, retries/detours under faults appear as events with failure
statuses, span context rides message metadata (and both frame
encodings), and — the determinism guard — a traced run returns results
byte-identical to an untraced one.
"""

from __future__ import annotations

import asyncio
import json

from repro.api.requests import MultiRangeQuery, RangeQuery, RequestOptions
from repro.api.sim import SimSession
from repro.binframe import decode_binary, encode_binary
from repro.core.armada import ArmadaSystem
from repro.faults import ResiliencePolicy
from repro.obs.spans import Tracer, trace_from_wire
from repro.runtime.protocol import message_to_wire, wire_to_message
from repro.sim.rng import DeterministicRNG
from repro.workloads.values import uniform_values

LOW, HIGH = 100.0, 300.0
INTERVALS = ((0.0, 1000.0), (0.0, 1000.0))


def build_system(num_peers: int = 150, seed: int = 88, replicas: int = 1) -> ArmadaSystem:
    system = ArmadaSystem(
        num_peers=num_peers,
        seed=seed,
        attribute_interval=(0.0, 1000.0),
        attribute_intervals=INTERVALS,
    )
    values = uniform_values(DeterministicRNG(seed).substream("values"), 800, 0.0, 1000.0)
    if replicas > 1:
        for value in values:
            system.insert_replicated(value, replicas=replicas)
    else:
        system.insert_many(values)
    return system


def traced_query(system: ArmadaSystem, request=None):
    """Run one traced query through the session API; returns the reply."""
    session = SimSession(system, tracer=Tracer())
    if request is None:
        request = RangeQuery(low=LOW, high=HIGH, options=RequestOptions(trace=True))
    return asyncio.run(session.submit(request))


class TestHopSpans:
    def test_one_hop_span_per_forwarding_message(self):
        system = build_system()
        reply = traced_query(system)
        trace = trace_from_wire(reply.trace)
        hop_spans = [s for s in trace.spans if s.name.startswith("hop ")]
        assert len(hop_spans) == reply.result.messages
        assert {s.attributes["receiver"] for s in hop_spans} == {
            step[1] for step in reply.result.forwarding_steps
        }

    def test_span_parents_follow_the_routing_tree(self):
        system = build_system()
        reply = traced_query(system)
        trace = trace_from_wire(reply.trace)
        by_id = {span.span_id: span for span in trace.spans}
        for span in trace.spans:
            if not span.name.startswith("hop "):
                continue
            parent = by_id[span.parent_id]
            if parent is trace.root:
                assert span.attributes["sender"] == reply.result.origin
            else:
                assert span.attributes["sender"] == parent.attributes["receiver"]

    def test_root_carries_query_attributes_and_ok_status(self):
        system = build_system()
        reply = traced_query(system)
        trace = trace_from_wire(reply.trace)
        assert trace.root.attributes["low"] == LOW
        assert trace.root.attributes["high"] == HIGH
        assert trace.status == "ok"
        assert reply.trace_id == trace.trace_id == f"pira-{reply.result.query_id}"

    def test_mira_queries_trace_too(self):
        system = build_system()
        request = MultiRangeQuery(
            ranges=((LOW, HIGH), (0.0, 1000.0)), options=RequestOptions(trace=True)
        )
        reply = traced_query(system, request)
        trace = trace_from_wire(reply.trace)
        assert trace.trace_id.startswith("mira-")
        assert len(trace) >= 1

    def test_replicated_population_still_traces_fan_out(self):
        system = build_system(num_peers=150, replicas=2)
        reply = traced_query(system)
        trace = trace_from_wire(reply.trace)
        children_per_parent = {}
        for span in trace.spans:
            children_per_parent[span.parent_id] = (
                children_per_parent.get(span.parent_id, 0) + 1
            )
        assert max(children_per_parent.values()) >= 2  # the tree genuinely fans out
        assert reply.status == "ok"


class TestContextOnTheWire:
    def test_traced_messages_carry_trace_and_span_ids(self):
        system = build_system(num_peers=80)
        seen = []

        def spy(message):
            seen.append(dict(message.metadata))
            return False  # observe, never drop

        system.overlay.set_drop_filter(spy)
        reply = traced_query(system)
        system.overlay.set_drop_filter(None)
        assert seen
        assert all(meta.get("trace") == reply.trace_id for meta in seen)
        assert len({meta["span"] for meta in seen}) == len(seen)

    def test_untraced_messages_carry_no_trace_keys(self):
        system = build_system(num_peers=80)
        seen = []

        def spy(message):
            seen.append(dict(message.metadata))
            return False

        system.overlay.set_drop_filter(spy)
        session = SimSession(system, tracer=Tracer())
        asyncio.run(session.submit(RangeQuery(low=LOW, high=HIGH)))
        system.overlay.set_drop_filter(None)
        assert seen
        assert all("trace" not in meta and "span" not in meta for meta in seen)

    def test_msg_frame_round_trips_context_in_json_and_binary(self):
        system = build_system(num_peers=80)
        captured = []

        def spy(message):
            captured.append(message)
            return False

        system.overlay.set_drop_filter(spy)
        traced_query(system)
        system.overlay.set_drop_filter(None)
        frame = message_to_wire(captured[0])
        assert frame["meta"]["trace"] == captured[0].metadata["trace"]
        # JSON round trip
        via_json = wire_to_message(json.loads(json.dumps(frame)))
        assert via_json.metadata["trace"] == captured[0].metadata["trace"]
        assert via_json.metadata["span"] == captured[0].metadata["span"]
        # binary round trip (the negotiated v2 body codec is type-generic)
        via_binary = wire_to_message(decode_binary(encode_binary(frame)))
        assert via_binary.metadata["trace"] == captured[0].metadata["trace"]
        assert via_binary.metadata["span"] == captured[0].metadata["span"]

    def test_reply_trace_payload_round_trips_binary(self):
        system = build_system(num_peers=80)
        reply = traced_query(system)
        payload = {"type": "reply", "trace_id": reply.trace_id, "trace": list(reply.trace)}
        decoded = decode_binary(encode_binary(payload))
        assert decoded["trace_id"] == reply.trace_id
        rebuilt = trace_from_wire(decoded["trace"])
        assert rebuilt.trace_id == reply.trace_id
        assert len(rebuilt) == len(reply.trace)


class TestFaultSpans:
    def test_retries_appear_as_events_under_the_failed_hop(self):
        system = build_system()
        system.set_resilience(ResiliencePolicy(per_hop_timeout=3.0, max_retries=2))
        seen = set()

        def drop_first_copy(message):
            key = (message.query_id, message.metadata.get("send"))
            if key in seen:
                return False
            seen.add(key)
            return True

        system.overlay.set_drop_filter(drop_first_copy)
        reply = traced_query(system)
        system.overlay.set_drop_filter(None)
        assert reply.result.resilience.retries > 0
        trace = trace_from_wire(reply.trace)
        retries = [s for s in trace.spans if s.name == "retry"]
        drops = [s for s in trace.spans if s.name == "drop"]
        assert len(retries) == reply.result.resilience.retries
        assert len(drops) == reply.result.resilience.drops
        hop_ids = {s.span_id for s in trace.spans if s.name.startswith("hop ")}
        assert all(event.parent_id in hop_ids for event in retries + drops)

    def test_dead_hop_yields_timeout_status_and_detour_span(self):
        reference = build_system()
        probe = traced_query(reference)
        victim = next(
            step[1] for step in probe.result.forwarding_steps if step[2] == 1
        )

        system = build_system()
        system.set_resilience(
            ResiliencePolicy(per_hop_timeout=2.0, max_retries=1, reroute=True)
        )
        system.overlay.set_drop_filter(
            lambda message: message.receiver == victim
        )
        reply = traced_query(system)
        system.overlay.set_drop_filter(None)
        assert reply.result.resilience.reroutes > 0
        trace = trace_from_wire(reply.trace)
        timed_out = [s for s in trace.spans if s.status == "timeout"]
        detours = [s for s in trace.spans if s.name.startswith("detour ")]
        assert timed_out and detours
        failed_ids = {s.span_id for s in timed_out}
        assert any(d.parent_id in failed_ids for d in detours)
        assert all(d.attributes["around"] == victim for d in detours)

    def test_partial_query_trace_status(self):
        system = build_system(num_peers=80)
        system.set_resilience(
            ResiliencePolicy(per_hop_timeout=2.0, max_retries=1, reroute=False)
        )
        system.overlay.set_drop_filter(lambda message: True)
        reply = traced_query(system)
        system.overlay.set_drop_filter(None)
        assert reply.status == "partial"
        trace = trace_from_wire(reply.trace)
        assert trace.root.status == "partial"


class TestDeterminismGuard:
    def test_traced_result_is_byte_identical_to_untraced(self):
        untraced_session = SimSession(build_system())
        untraced = asyncio.run(
            untraced_session.submit(RangeQuery(low=LOW, high=HIGH))
        )
        traced = traced_query(build_system())
        assert traced.trace_id is not None and untraced.trace_id is None
        assert json.dumps(traced.result.to_wire(), sort_keys=True) == json.dumps(
            untraced.result.to_wire(), sort_keys=True
        )
        assert traced.latency == untraced.latency

    def test_trace_flag_without_tracer_degrades_cleanly(self):
        session = SimSession(build_system(num_peers=80))  # no tracer attached
        reply = asyncio.run(
            session.submit(
                RangeQuery(low=LOW, high=HIGH, options=RequestOptions(trace=True))
            )
        )
        assert reply.status == "ok"
        assert reply.trace_id is None
        assert reply.trace == ()
