"""Unit tests for workload generators and domain datasets."""

from __future__ import annotations

import pytest

from repro.sim.rng import DeterministicRNG
from repro.workloads.datasets import generate_grid_resources, generate_student_scores
from repro.workloads.queries import MultiAttributeQueryWorkload, RangeQueryWorkload
from repro.workloads.values import clustered_values, normal_values, uniform_values, zipf_values


class TestValueGenerators:
    def test_uniform_values_in_range_and_reproducible(self):
        first = uniform_values(DeterministicRNG(1), 500, 10.0, 20.0)
        second = uniform_values(DeterministicRNG(1), 500, 10.0, 20.0)
        assert first == second
        assert all(10.0 <= value <= 20.0 for value in first)
        assert len(first) == 500

    def test_uniform_values_validation(self):
        with pytest.raises(ValueError):
            uniform_values(DeterministicRNG(1), -1)
        with pytest.raises(ValueError):
            uniform_values(DeterministicRNG(1), 5, 10.0, 5.0)

    def test_normal_values_truncated(self):
        values = normal_values(DeterministicRNG(2), 400, mean=50.0, stddev=30.0, low=0.0, high=100.0)
        assert len(values) == 400
        assert all(0.0 <= value <= 100.0 for value in values)
        mean = sum(values) / len(values)
        assert 35.0 < mean < 65.0

    def test_zipf_values_are_skewed(self):
        values = zipf_values(DeterministicRNG(3), 2000, alpha=1.3, buckets=50, low=0.0, high=1000.0)
        assert all(0.0 <= value <= 1000.0 for value in values)
        first_bucket = sum(1 for value in values if value < 20.0)
        last_bucket = sum(1 for value in values if value >= 980.0)
        assert first_bucket > last_bucket

    def test_clustered_values_stay_near_centers(self):
        centers = [100.0, 500.0, 900.0]
        values = clustered_values(DeterministicRNG(4), 300, centers, spread=5.0)
        assert all(any(abs(value - center) <= 5.0 for center in centers) for value in values)

    def test_clustered_requires_centers(self):
        with pytest.raises(ValueError):
            clustered_values(DeterministicRNG(4), 10, [])


class TestRangeQueryWorkload:
    def test_queries_have_requested_size_and_stay_inside_interval(self):
        workload = RangeQueryWorkload(range_size=50.0, low=0.0, high=1000.0, count=200)
        queries = workload.as_list(DeterministicRNG(5))
        assert len(queries) == 200
        for low, high in queries:
            assert high - low == pytest.approx(50.0)
            assert 0.0 <= low <= high <= 1000.0

    def test_reproducible(self):
        workload = RangeQueryWorkload(range_size=20.0, count=50)
        assert workload.as_list(DeterministicRNG(6)) == workload.as_list(DeterministicRNG(6))

    def test_validation(self):
        with pytest.raises(ValueError):
            RangeQueryWorkload(range_size=-1.0)
        with pytest.raises(ValueError):
            RangeQueryWorkload(range_size=2000.0, low=0.0, high=1000.0)
        with pytest.raises(ValueError):
            RangeQueryWorkload(range_size=10.0, low=5.0, high=1.0)
        with pytest.raises(ValueError):
            RangeQueryWorkload(range_size=10.0, count=-1)


class TestMultiAttributeWorkload:
    def test_boxes_respect_sizes_and_intervals(self):
        workload = MultiAttributeQueryWorkload(
            range_sizes=[10.0, 200.0],
            intervals=[(0.0, 100.0), (0.0, 1000.0)],
            count=80,
        )
        boxes = workload.as_list(DeterministicRNG(7))
        assert len(boxes) == 80
        for box in boxes:
            assert box[0][1] - box[0][0] == pytest.approx(10.0)
            assert box[1][1] - box[1][0] == pytest.approx(200.0)
            assert 0.0 <= box[0][0] <= box[0][1] <= 100.0
            assert 0.0 <= box[1][0] <= box[1][1] <= 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiAttributeQueryWorkload(range_sizes=[10.0], intervals=[(0.0, 1.0), (0.0, 1.0)])
        with pytest.raises(ValueError):
            MultiAttributeQueryWorkload(range_sizes=[10.0], intervals=[(0.0, 5.0)])


class TestDatasets:
    def test_student_scores_shape(self):
        scores = generate_student_scores(DeterministicRNG(8), 300)
        assert len(scores) == 300
        assert all(0.0 <= record.score <= 100.0 for record in scores)
        assert len({record.student_id for record in scores}) == 300

    def test_grid_resources_shape(self):
        resources = generate_grid_resources(DeterministicRNG(9), 400)
        assert len(resources) == 400
        for machine in resources:
            memory, disk, cpu = machine.as_tuple()
            assert 0.0 < memory <= 64.0
            assert 0.0 < disk <= 4000.0
            assert 0.0 < cpu <= 5.0

    def test_grid_resources_cover_small_and_large_profiles(self):
        resources = generate_grid_resources(DeterministicRNG(10), 600)
        assert any(machine.memory_gb <= 2.5 for machine in resources)
        assert any(machine.memory_gb >= 12.0 for machine in resources)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_grid_resources(DeterministicRNG(11), -1)
