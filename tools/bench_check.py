#!/usr/bin/env python3
"""CI perf-regression gate: run the benchmark suite and diff the numbers.

Standalone wrapper over :mod:`repro.benchgate` (the ``repro bench``
subcommand is the same flow).  Typical CI invocation, from the repo root::

    python tools/bench_check.py --check

which (1) runs the ``benchmarks/`` pytest suite, regenerating the
``BENCH_*.json`` artifacts, (2) appends a timestamped, environment-stamped
record to ``benchmarks/history.jsonl``, (3) prints a delta table of every
gated metric against the baselines committed at git HEAD, and (4) exits
non-zero if any gated metric regressed by more than the threshold.

Wall-clock throughput metrics are only gated when the baseline was
recorded on a machine with the same ``cpu_count`` — ratios (success
ratios, speedups, deterministic counts) are gated unconditionally.
"""

from __future__ import annotations

import argparse
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.benchgate import DEFAULT_THRESHOLD, run_gate  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when a gated metric regresses beyond the threshold",
    )
    parser.add_argument(
        "--skip-run",
        action="store_true",
        help="compare the on-disk BENCH_*.json without rerunning the suite",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"relative drop that fails the gate (default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="directory holding BENCH_*.json (default: <repo>/benchmarks)",
    )
    parser.add_argument(
        "--baseline-dir",
        default=None,
        help="baseline BENCH_*.json directory (default: the files committed at git HEAD)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to benchmarks/history.jsonl",
    )
    args = parser.parse_args(argv)
    return run_gate(
        repo_root=_REPO_ROOT,
        bench_dir=args.bench_dir,
        baseline_dir=args.baseline_dir,
        check=args.check,
        skip_run=args.skip_run,
        threshold=args.threshold,
        history=not args.no_history,
    )


if __name__ == "__main__":
    sys.exit(main())
