#!/usr/bin/env python3
"""Documentation link checker (used by the CI docs job).

Scans the repository's markdown files for inline links ``[text](target)``
and verifies that every *relative* target exists on disk, resolved against
the file containing the link.  External links (``http(s)://``, ``mailto:``)
and pure in-page anchors (``#...``) are skipped; a relative target's own
``#anchor`` suffix is stripped before the existence check.

Exit status: 0 when every link resolves, 1 otherwise (missing targets are
listed on stderr).
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

#: inline markdown link, non-greedy so adjacent links split correctly
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: markdown files checked by default (relative to the repo root)
DEFAULT_FILES = ("README.md", "docs/ARCHITECTURE.md")


def iter_links(markdown_path: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every inline link in the file."""
    with open(markdown_path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            for match in _LINK.finditer(line):
                yield line_number, match.group(1)


def check_file(markdown_path: str) -> List[str]:
    """Return a list of error strings for unresolvable relative links."""
    errors: List[str] = []
    base = os.path.dirname(os.path.abspath(markdown_path))
    for line_number, target in iter_links(markdown_path):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(os.path.join(base, path))
        if not os.path.exists(resolved):
            errors.append(f"{markdown_path}:{line_number}: broken link -> {target}")
    return errors


def main(argv: List[str]) -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = argv[1:] if len(argv) > 1 else [os.path.join(root, name) for name in DEFAULT_FILES]
    errors: List[str] = []
    checked = 0
    for markdown_path in files:
        if not os.path.exists(markdown_path):
            errors.append(f"{markdown_path}: file not found")
            continue
        checked += 1
        errors.extend(check_file(markdown_path))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        return 1
    print(f"checked {checked} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
