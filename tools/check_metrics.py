#!/usr/bin/env python3
"""CI helper: scrape a live /metrics endpoint and sanity-check the series.

Used by the runtime-smoke job while a soak runs in the background::

    python tools/check_metrics.py --url http://127.0.0.1:9109/metrics

The check (1) polls until the endpoint answers (the soak takes a moment
to boot), (2) asserts every required series is present in Prometheus
text form, and (3) takes a second sample after a short delay and asserts
the core counters are monotone non-decreasing — the property Prometheus
rate() queries depend on.  Exit code 0 on success, 1 with a reason on
any failure; stdlib only.
"""

from __future__ import annotations

import argparse
import sys
import time
import urllib.error
import urllib.request

#: series that must appear in every scrape of a metrics-enabled gateway
REQUIRED_SERIES = (
    "repro_gateway_in_flight",
    "repro_gateway_connections",
    "repro_gateway_frames_total",
    "repro_query_retries_total",
    "repro_query_reroutes_total",
    "repro_gateway_query_latency_seconds_bucket",
    "repro_gateway_query_latency_seconds_count",
    "repro_gateway_query_hops_count",
    "repro_transport_messages_sent",
    "repro_cluster_peers",
    "repro_peer_frames_total",
    "repro_peer_store_sync_total",
    "repro_membership_alive",
    "repro_membership_suspect",
    "repro_membership_dead",
    "repro_gossip_frames_total",
)

#: counters whose values must never decrease between two scrapes
MONOTONE_SERIES = (
    "repro_gateway_frames_total",
    "repro_gateway_queries_total",
    "repro_query_retries_total",
    "repro_gateway_query_latency_seconds_count",
    "repro_transport_messages_sent",
    "repro_peer_frames_total",
    "repro_peer_store_sync_total",
    "repro_gossip_frames_total",
)


def scrape(url: str, timeout: float) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        body = response.read().decode("utf-8")
        content_type = response.headers.get("Content-Type", "")
    if "text/plain" not in content_type:
        raise RuntimeError(f"unexpected Content-Type {content_type!r}")
    return body


def scrape_with_retry(url: str, deadline: float, timeout: float) -> str:
    """Poll until the endpoint answers (the server may still be booting)."""
    give_up = time.monotonic() + deadline
    while True:
        try:
            return scrape(url, timeout)
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            if time.monotonic() >= give_up:
                raise RuntimeError(f"endpoint never came up: {exc}") from exc
            time.sleep(0.5)


def parse_samples(text: str) -> dict:
    """Prometheus text → {series_name_with_labels: float}; comments skipped."""
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            samples[name] = float(value)
        except ValueError:
            continue
    return samples


def series_values(samples: dict, prefix: str) -> dict:
    """All samples of one series (bare name or every labelled child)."""
    return {
        name: value
        for name, value in samples.items()
        if name == prefix or name.startswith(prefix + "{")
    }


def check_totals(text: str) -> list:
    """Every ``_total`` sample line must carry a valid finite float value.

    ``parse_samples`` silently skips unparseable values (comments aside,
    exposition lines it does not understand), so a counter rendered as
    ``nan`` or garbage would otherwise vanish instead of failing the gate.
    """
    problems = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        bare = name.split("{", 1)[0]
        if not bare.endswith("_total"):
            continue
        try:
            parsed = float(value)
        except ValueError:
            problems.append(f"{name}: value {value!r} is not a float")
            continue
        if parsed != parsed or parsed in (float("inf"), float("-inf")):
            problems.append(f"{name}: value {value!r} is not finite")
    return problems


def check_histograms(samples: dict) -> list:
    """Structural consistency of every exposed histogram.

    For each series with ``_bucket`` children: the buckets must be
    cumulative (non-decreasing with ``le``), the ``+Inf`` bucket must
    equal the ``_count`` sample, and a ``_sum`` sample must exist.
    """
    problems = []
    histograms = {}
    for name, value in samples.items():
        bare = name.split("{", 1)[0]
        if not bare.endswith("_bucket") or 'le="' not in name:
            continue
        le = name.split('le="', 1)[1].split('"', 1)[0]
        bound = float("inf") if le in ("+Inf", "inf") else float(le)
        histograms.setdefault(bare[: -len("_bucket")], []).append((bound, value))
    if not histograms:
        return ["no histogram series exposed at all"]
    for base, buckets in sorted(histograms.items()):
        buckets.sort()
        previous = 0.0
        for bound, value in buckets:
            if value < previous:
                problems.append(
                    f"{base}: bucket le={bound:g} count {value} below "
                    f"previous bucket's {previous} (not cumulative)"
                )
            previous = value
        if buckets[-1][0] != float("inf"):
            problems.append(f"{base}: no +Inf bucket")
            continue
        count = samples.get(f"{base}_count")
        if count is None:
            problems.append(f"{base}: no _count sample")
        elif count != buckets[-1][1]:
            problems.append(
                f"{base}: _count {count} != +Inf bucket {buckets[-1][1]}"
            )
        if f"{base}_sum" not in samples:
            problems.append(f"{base}: no _sum sample")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:9109/metrics",
        help="metrics endpoint to scrape",
    )
    parser.add_argument(
        "--boot-deadline",
        type=float,
        default=60.0,
        help="seconds to keep retrying until the endpoint first answers",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between the two monotonicity samples",
    )
    args = parser.parse_args(argv)

    try:
        first_text = scrape_with_retry(args.url, args.boot_deadline, timeout=5.0)
    except RuntimeError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    first = parse_samples(first_text)

    missing = [
        series for series in REQUIRED_SERIES if not series_values(first, series)
    ]
    if missing:
        print(f"FAIL: required series missing: {', '.join(missing)}", file=sys.stderr)
        print(first_text, file=sys.stderr)
        return 1
    print(f"scrape 1: {len(first)} samples, all {len(REQUIRED_SERIES)} required series present")

    structural = check_totals(first_text) + check_histograms(first)
    if structural:
        print(
            "FAIL: malformed exposition:\n  " + "\n  ".join(structural),
            file=sys.stderr,
        )
        print(first_text, file=sys.stderr)
        return 1
    print("scrape 1: _total values parse, histograms cumulative and _sum/_count consistent")

    time.sleep(args.interval)
    try:
        second = parse_samples(scrape(args.url, timeout=5.0))
    except Exception as exc:  # noqa: BLE001 - any scrape failure fails the gate
        print(f"FAIL: second scrape failed: {exc}", file=sys.stderr)
        return 1

    regressions = []
    for series in MONOTONE_SERIES:
        before = series_values(first, series)
        after = series_values(second, series)
        for name, value in before.items():
            if name in after and after[name] < value:
                regressions.append(f"{name}: {value} -> {after[name]}")
    if regressions:
        print(
            "FAIL: counters decreased between scrapes:\n  "
            + "\n  ".join(regressions),
            file=sys.stderr,
        )
        return 1
    print(f"scrape 2: {len(second)} samples, core counters monotone")
    return 0


if __name__ == "__main__":
    sys.exit(main())
